// Request coalescing for the serving hot path: per-family queues, each
// split into per-CLIENT subqueues with deficit-round-robin fair sharing,
// and cost-aware admission through opt::AdmissionController.
//
// Single-row score requests are tiny; dispatching each one to a worker
// would spend more time on queue traffic than on math, and the model
// replica would be re-read from DRAM for every row. The batcher coalesces
// requests into dense mini-batches so one worker runs the row-wise access
// method over max_batch_size rows against a replica that stays hot in
// cache -- the serving analogue of an epoch's sequential row scan.
//
// Families do not share queues: a mini-batch is scored against ONE
// family's replica, so mixing families in a queue would shred batches at
// flush time, and a burst against one family must back-pressure that
// family alone, not starve its neighbors. Within a family, CLIENTS do not
// share a FIFO either: each client id gets its own subqueue, and batch
// formation drains them with deficit round robin (DRR) weighted by the
// client's configured share, so one client flooding a family cannot
// monopolize its batches or its admission capacity. fair_queuing=false
// collapses the subqueues back into one arrival-ordered FIFO -- the
// baseline bench_serving experiment 6 measures fairness against.
//
// Admission is COST-AWARE when an opt::AdmissionController is attached:
// instead of rejecting on the raw row count alone, Submit estimates the
// queueing delay the new request would see -- backlog rows ahead of it
// times the controller's calibrated per-row service estimate, divided by
// the drain parallelism -- and rejects when that exceeds the family's
// queueing-delay budget (Options::queue_delay_budget; zero converts
// max_queue_rows into the budget at the current estimate, which
// degenerates to exactly the legacy row bound). max_queue_rows always
// remains as the hard memory cap. Under fair queuing both the row cap
// and the delay budget are split across clients by weight, so a hog
// exhausts only its own share.
//
// Flush policy (per family): a batch is released as soon as the queue
// reaches max_batch_size rows (flush on size), or when the OLDEST queued
// request in ANY of the family's client subqueues has waited max_delay
// (flush on deadline), whichever comes first. Expired deadlines outrank
// size-ready neighbors regardless of where the round-robin cursor
// points, and multiple expired families drain in expiry order. Deadline
// and drain flushes take rows oldest-first across clients (the latency
// path honors age); size flushes take them DRR (the throughput path
// honors fairness). Shutdown() drains: workers keep receiving partial
// batches until every queue is empty, so no accepted request is ever
// dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "matrix/sparse_vector.h"
#include "obs/metrics.h"
#include "opt/admission_controller.h"
#include "util/status.h"

namespace dw::serve {

/// Index of a family's queue inside the batcher (assigned by AddQueue in
/// registration order; the serving engine maps family name -> id once).
using FamilyId = int;

/// Upper bound on a ClientId's length.
inline constexpr size_t kMaxClientIdBytes = 64;

/// Identifies the submitting client for fair queuing and per-client
/// accounting. Must be non-empty and at most kMaxClientIdBytes long
/// (validated at admission: both bounds are trust-boundary checks on a
/// caller-supplied string that becomes a stats key).
///
/// A deliberate strong type with EXPLICIT constructors rather than a
/// bare std::string: the Score / Submit overload sets mix string-ish and
/// brace-initializable parameters, and std::string's conversions would
/// otherwise let `{4}` (initializer_list<char>) or a literal `0` (null
/// pointer constant) silently become a client id and make existing
/// `Score(family, {i}, {1.0})` call sites ambiguous. Callers write
/// ClientId("tenant-a") once at the submission site.
class ClientId {
 public:
  ClientId() = default;
  explicit ClientId(const char* name) : name_(name) {}
  explicit ClientId(std::string name) : name_(std::move(name)) {}

  const std::string& str() const { return name_; }
  bool empty() const { return name_.empty(); }
  size_t size() const { return name_.size(); }

  friend bool operator==(const ClientId& a, const ClientId& b) {
    return a.name_ == b.name_;
  }
  friend bool operator!=(const ClientId& a, const ClientId& b) {
    return !(a == b);
  }
  friend std::ostream& operator<<(std::ostream& os, const ClientId& c) {
    return os << c.name_;
  }

 private:
  std::string name_;
};

/// The client requests land on when the caller does not name one (the
/// single-tenant form of the API).
inline const ClientId kDefaultClient("default");

/// InvalidArgument for an empty or oversized client id, OK otherwise.
Status ValidateClientId(const ClientId& client);

/// One single-row score request: an owned sparse feature vector plus the
/// promise the scoring worker fulfills. Empty `indices` with nonempty
/// `values` is the explicit DENSE form (value k at coordinate k) -- half
/// the payload, and the batched kernels skip index loads entirely.
///
/// The ID-KEYED form (`by_id`) carries no features at all: `row_id`
/// names a row in the family's FeatureStore and the scoring worker
/// gathers the features from its node's placement at scoring time, so
/// the payload is one integer regardless of model width.
struct ScoreRequest {
  std::vector<matrix::Index> indices;
  std::vector<double> values;
  /// Id-keyed form (Score(family, row_id)): indices/values stay empty and
  /// View() must not be used -- the worker builds the view from the
  /// store snapshot it acquired for the batch.
  bool by_id = false;
  matrix::Index row_id = 0;
  /// Key-keyed form (ScoreKey(family, key)): like by_id, but `key` is an
  /// entity key the worker resolves through the batch's pinned store
  /// snapshot index -- a key evicted between admission and scoring
  /// misses (kNotFound) instead of serving stale bytes.
  bool by_key = false;
  uint64_t key = 0;
  /// Submitting client (fair-queuing key; kDefaultClient when the caller
  /// used the client-less Submit form).
  ClientId client;
  std::promise<double> result;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Lifecycle tracing: sampled at admission (Options::trace_sample_every);
  /// the scoring worker assembles a full obs::SpanRecord for traced rows.
  bool traced = false;
  /// Engine-side admission time (Score() entry to enqueue), microseconds;
  /// 0 when the caller did not pass its entry timestamp.
  double admit_us = 0.0;

  matrix::SparseVectorView View() const {
    return {indices.empty() ? nullptr : indices.data(), values.data(),
            values.size()};
  }
};

/// Why a batch left its queue.
enum class FlushReason {
  kSize,      ///< the queue reached max_batch_size
  kDeadline,  ///< the oldest request aged past max_delay
  kDrain,     ///< shutdown drained the remainder
};

const char* ToString(FlushReason r);

/// A mini-batch handed to one scoring worker; all rows belong to `family`.
struct Batch {
  FamilyId family = 0;
  FlushReason reason = FlushReason::kSize;
  /// When the flush policy formed this batch (TakeBatch): the boundary
  /// between a row's queue stage and the batch-form stage.
  std::chrono::steady_clock::time_point formed_at;
  std::vector<ScoreRequest> requests;
  size_t rows() const { return requests.size(); }
};

/// Bounded MPMC queues (one per family, per-client subqueues inside) with
/// size/deadline batch formation and a shared worker wait.
class RequestBatcher {
 public:
  struct Options {
    size_t max_batch_size = 64;
    std::chrono::microseconds max_delay{500};
    /// Hard admission cap: Submit always rejects (back-pressure) beyond
    /// this many queued rows IN THIS FAMILY -- the memory bound of last
    /// resort, and the quantity the delay budget is derived from when no
    /// explicit budget is set.
    size_t max_queue_rows = 1 << 16;
    /// Queueing-delay budget for cost-aware admission (needs an attached
    /// AdmissionController): reject when the estimated time-to-drain of
    /// the backlog ahead of a request exceeds this. Zero derives the
    /// budget from max_queue_rows at the controller's current per-row
    /// estimate, which makes the delay test degenerate to the legacy row
    /// bound exactly.
    std::chrono::microseconds queue_delay_budget{0};
    /// Deficit-round-robin fair queuing across clients. false = one
    /// arrival-ordered FIFO per family (the blind baseline): clients
    /// still get individual counters but no isolation.
    bool fair_queuing = true;
    /// DRR quantum: rows credited per unit of client weight each time the
    /// rotation visits a client. Small enough to interleave clients
    /// within one batch, large enough to keep runs of one client's rows
    /// cache-friendly.
    size_t drr_quantum_rows = 16;
    /// Cap on DISTINCT client ids per family. Client ids cross a trust
    /// boundary and each one allocates a permanent subqueue and dilutes
    /// every tenant's fair-queuing share, so a caller misusing a
    /// request/session id as the client id must hit a wall: submissions
    /// from a never-seen client beyond this cap are rejected
    /// (ResourceExhausted) without registering the client.
    size_t max_clients = 64;
    /// Idle-client aging: a client whose subqueue has been EMPTY for at
    /// least this long since its last accepted submission is evicted
    /// from the roster, returning its reserved fair-queuing share (and
    /// its max_clients slot) to the remaining tenants -- the fix for
    /// one-shot clients permanently diluting long-lived tenants'
    /// weight-split budgets. Clients configured through SetClientWeight
    /// are PINNED: an operator-declared tenant keeps its reservation
    /// while idle. Zero disables aging (known clients keep their
    /// reservation forever, the pre-aging behavior).
    std::chrono::milliseconds client_idle_timeout{0};
    /// Lifecycle tracing: mark every Nth accepted request traced (the
    /// first accepted request is always the cycle's start, so short
    /// tests see a span). 0 disables sampling entirely.
    uint64_t trace_sample_every = 0;
  };

  /// Per-client admission/service counters (inside QueueStats).
  struct ClientStats {
    ClientId client;
    double weight = 1.0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;  ///< both full-queue and over-budget refusals
    uint64_t served = 0;    ///< rows handed to a worker in some batch
    size_t depth = 0;       ///< rows queued right now
  };

  /// Per-family admission counters (snapshot; `depth` is racy-by-design
  /// monitoring data, the totals are exact at quiescence).
  struct QueueStats {
    uint64_t accepted = 0;
    uint64_t rejected_full = 0;  ///< refusals on the hard row cap / share
    uint64_t rejected_cost = 0;  ///< refusals on the queueing-delay budget
    uint64_t flush_size = 0;
    uint64_t flush_deadline = 0;
    uint64_t flush_drain = 0;
    size_t depth = 0;  ///< rows queued right now
    std::vector<ClientStats> clients;  ///< first-seen order
  };

  RequestBatcher() = default;

  /// Attaches the admission cost model. The controller's family ids must
  /// align with this batcher's FamilyIds (the serving engine registers
  /// both in lockstep). Call before traffic; nullptr disables cost-aware
  /// admission (the hard row cap still applies).
  void AttachController(const opt::AdmissionController* controller);

  /// Backs every queue counter with instruments on `registry` (must
  /// outlive the batcher). Must be called before the first AddQueue --
  /// the instruments are resolved at queue creation. Without this call
  /// the batcher lazily owns a private enabled registry, so standalone
  /// use keeps exact counters; the serving engine attaches its own
  /// (possibly disabled) registry instead.
  void AttachRegistry(obs::Registry* registry);

  /// Adds a family queue; returns its id (dense, from 0). `name` labels
  /// the queue's metrics (family=<name>; "q<id>" when empty). Callable
  /// while workers run (registration is rare; the lock is shared with
  /// the hot path but uncontended).
  FamilyId AddQueue(const Options& opts, const std::string& name = "");

  /// Sets a client's fair-queuing weight on `family` (creating the
  /// client's subqueue if it has not submitted yet). Weights are relative
  /// shares of the family's batches and admission capacity. Checks the
  /// id (non-empty, bounded) and the weight (> 0) fatally: this is an
  /// operator configuration call, not request-path input.
  void SetClientWeight(FamilyId family, const ClientId& client,
                       double weight);

  /// Enqueues one carried-feature row on `family`'s queue for `client`
  /// (trailing, so the client-less form stays a prefix of this one). The
  /// future resolves once a worker scores the batch containing it. Fails
  /// with InvalidArgument on a bad client id, ResourceExhausted when the
  /// client's admission share (row cap or delay budget) is exhausted,
  /// and FailedPrecondition after Shutdown(). `admitted_at`, when
  /// non-default, is the caller's validation entry time and charges the
  /// span's admit stage (the engine passes its Score() entry).
  StatusOr<std::future<double>> Submit(
      FamilyId family, std::vector<matrix::Index> indices,
      std::vector<double> values, ClientId client,
      std::chrono::steady_clock::time_point admitted_at = {});

  /// Single-tenant convenience: Submit on kDefaultClient.
  StatusOr<std::future<double>> Submit(FamilyId family,
                                       std::vector<matrix::Index> indices,
                                       std::vector<double> values);

  /// Enqueues one id-keyed request on `family`'s queue for `client`.
  /// Admission is UNIFIED with Submit(): the same status codes apply
  /// (the caller validates row_id against the family's store bounds,
  /// exactly as it validates carried feature indices against the model
  /// dim, so both request forms report identical Status codes for
  /// analogous failures).
  StatusOr<std::future<double>> SubmitId(
      FamilyId family, matrix::Index row_id, ClientId client,
      std::chrono::steady_clock::time_point admitted_at = {});

  /// Single-tenant convenience: SubmitId on kDefaultClient.
  StatusOr<std::future<double>> SubmitId(FamilyId family,
                                         matrix::Index row_id);

  /// Enqueues one key-keyed request on `family`'s queue for `client`.
  /// Shares the admission tail with Submit/SubmitId (identical Status
  /// codes); the caller screens the key against the family's store index
  /// the way SubmitId callers screen row ids against its bounds.
  StatusOr<std::future<double>> SubmitKey(
      FamilyId family, uint64_t key, ClientId client,
      std::chrono::steady_clock::time_point admitted_at = {});

  /// Single-tenant convenience: SubmitKey on kDefaultClient.
  StatusOr<std::future<double>> SubmitKey(FamilyId family, uint64_t key);

  /// Blocks until some family has a batch ready under the flush policy;
  /// returns false only once the batcher is shut down AND every queue is
  /// drained. Ready queues are served round-robin so one hot family
  /// cannot starve the others, and expired deadlines outrank size-ready
  /// queues in expiry order.
  bool NextBatch(Batch* out);

  /// Stops admission and wakes all waiting workers to drain the queues.
  void Shutdown();

  /// Rows currently queued across all families (racy snapshot).
  size_t pending() const;

  QueueStats queue_stats(FamilyId family) const;
  const Options& options(FamilyId family) const;
  int num_queues() const;

 private:
  struct ClientQueue {
    ClientId id;
    double weight = 1.0;
    std::deque<ScoreRequest> queue;
    /// DRR deficit in rows, reset when the subqueue empties (and on
    /// SetClientWeight: credit earned at the old weight must not carry
    /// into the new one).
    size_t deficit = 0;
    /// Last accepted submission (or weight configuration); drives idle
    /// aging. Initialized at roster entry.
    std::chrono::steady_clock::time_point last_active{};
    /// SetClientWeight pins the client against idle eviction: an
    /// operator-declared tenant keeps its reservation while idle.
    bool pinned = false;
    /// Registry-backed counters (labels family=..., client=...); the
    /// ClientStats view reads these, so the registry is the single
    /// source of truth.
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* served = nullptr;
  };

  struct FamilyQueue {
    Options opts;
    /// Metric label (family=<label>) for this queue's instruments.
    std::string label;
    /// deque: stable references across client creation.
    std::deque<ClientQueue> clients;
    std::unordered_map<std::string, size_t> client_index;
    /// Sum of all known clients' weights, maintained incrementally so
    /// per-submit share math is O(1) under the admission lock.
    double total_weight = 0.0;
    size_t rows = 0;  ///< total queued rows across clients
    /// DRR rotation cursor over clients for size-triggered flushes.
    size_t drr_cursor = 0;
    /// Accepted submissions, kept plain (mu_-guarded) because the trace
    /// sampler needs an exact modulo even on a disabled registry.
    uint64_t submit_seq = 0;
    /// Registry-backed admission/flush counters and the depth gauge
    /// (QueueStats is a thin view over these).
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected_full = nullptr;
    obs::Counter* rejected_cost = nullptr;
    obs::Counter* flush_size = nullptr;
    obs::Counter* flush_deadline = nullptr;
    obs::Counter* flush_drain = nullptr;
    obs::Gauge* depth = nullptr;
  };

  /// Shared admission tail of Submit/SubmitId: validates the client,
  /// applies the row cap and the delay budget (per-client shares under
  /// fair queuing), and enqueues. Both request forms go through here so
  /// their admission Status codes can never diverge.
  StatusOr<std::future<double>> Enqueue(
      FamilyId family, ClientId client, ScoreRequest req,
      std::chrono::steady_clock::time_point admitted_at);

  /// The client's subqueue, created on first use with weight 1 (mu_ held).
  ClientQueue& GetOrAddClient(FamilyQueue& q, const ClientId& client);

  /// Evicts unpinned clients whose subqueue has been empty past
  /// client_idle_timeout (mu_ held; no-op when aging is disabled). Runs
  /// at admission, BEFORE the roster-cap check, so a stale one-shot
  /// client's slot is reclaimable by a new arrival. Rebuilds the name
  /// index and parks the DRR cursor when anything moves; the evicted
  /// client's registry counters are interned, so its totals survive a
  /// later re-arrival.
  void EvictIdleClientsLocked(FamilyQueue& q,
                              std::chrono::steady_clock::time_point now);

  /// Enqueue time of the family's oldest queued request; false when the
  /// family is empty (mu_ held).
  bool OldestFront(const FamilyQueue& q,
                   std::chrono::steady_clock::time_point* when) const;

  /// Pops up to max_batch_size rows of queue `f` into `out` (mu_ held):
  /// DRR across clients for size flushes, oldest-first merge for
  /// deadline/drain flushes.
  void TakeBatch(FamilyId f, FlushReason reason, Batch* out);

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  /// deque: stable references across AddQueue.
  std::deque<FamilyQueue> queues_;
  /// Round-robin cursor over families for size flushes.
  size_t next_queue_ = 0;
  bool shutdown_ = false;
  const opt::AdmissionController* controller_ = nullptr;
  /// Instrument source: an attached registry, or a lazily-created
  /// private one when the batcher is used standalone.
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<obs::Registry> own_registry_;
};

}  // namespace dw::serve
