#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dw::serve {

RequestBatcher::RequestBatcher(const Options& opts) : opts_(opts) {
  DW_CHECK_GT(opts_.max_batch_size, 0u);
  DW_CHECK_GT(opts_.max_queue_rows, 0u);
}

StatusOr<std::future<double>> RequestBatcher::Submit(
    std::vector<matrix::Index> indices, std::vector<double> values) {
  // Empty indices with nonempty values is the explicit dense form.
  if (indices.size() != values.size() && !indices.empty()) {
    return Status::InvalidArgument("indices/values length mismatch");
  }
  ScoreRequest req;
  req.indices = std::move(indices);
  req.values = std::move(values);
  req.enqueued_at = std::chrono::steady_clock::now();
  std::future<double> fut = req.result.get_future();

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("batcher is shut down");
    }
    if (queue_.size() >= opts_.max_queue_rows) {
      return Status::ResourceExhausted("serving queue full");
    }
    queue_.push_back(std::move(req));
  }
  // One waiter is enough: either the batch is full and it takes it, or it
  // re-arms its deadline timer on the (possibly first) queued request.
  ready_cv_.notify_one();
  return fut;
}

bool RequestBatcher::NextBatch(Batch* out) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (queue_.size() >= opts_.max_batch_size) break;  // flush on size
    if (shutdown_) {
      if (queue_.empty()) return false;
      break;  // drain the remainder as a partial batch
    }
    if (!queue_.empty()) {
      const auto deadline = queue_.front().enqueued_at + opts_.max_delay;
      if (std::chrono::steady_clock::now() >= deadline) {
        break;  // flush on deadline
      }
      ready_cv_.wait_until(lk, deadline);
    } else {
      ready_cv_.wait(lk);
    }
  }

  const size_t take = std::min(queue_.size(), opts_.max_batch_size);
  out->requests.clear();
  out->requests.reserve(take);
  for (size_t k = 0; k < take; ++k) {
    out->requests.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  lk.unlock();
  // Leftover rows may already form another full batch (or a drain batch):
  // hand them to a sibling worker immediately.
  ready_cv_.notify_one();
  return true;
}

void RequestBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace dw::serve
