#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dw::serve {

const char* ToString(FlushReason r) {
  switch (r) {
    case FlushReason::kSize:
      return "size";
    case FlushReason::kDeadline:
      return "deadline";
    case FlushReason::kDrain:
      return "drain";
  }
  return "?";
}

FamilyId RequestBatcher::AddQueue(const Options& opts) {
  DW_CHECK_GT(opts.max_batch_size, 0u);
  DW_CHECK_GT(opts.max_queue_rows, 0u);
  std::lock_guard<std::mutex> lk(mu_);
  queues_.push_back(FamilyQueue{opts, {}, 0, 0, 0, 0, 0});
  return static_cast<FamilyId>(queues_.size() - 1);
}

StatusOr<std::future<double>> RequestBatcher::Submit(
    FamilyId family, std::vector<matrix::Index> indices,
    std::vector<double> values) {
  // Empty indices with nonempty values is the explicit dense form.
  if (indices.size() != values.size() && !indices.empty()) {
    return Status::InvalidArgument("indices/values length mismatch");
  }
  ScoreRequest req;
  req.indices = std::move(indices);
  req.values = std::move(values);
  return Enqueue(family, std::move(req));
}

StatusOr<std::future<double>> RequestBatcher::SubmitId(FamilyId family,
                                                       matrix::Index row_id) {
  ScoreRequest req;
  req.by_id = true;
  req.row_id = row_id;
  return Enqueue(family, std::move(req));
}

StatusOr<std::future<double>> RequestBatcher::Enqueue(FamilyId family,
                                                      ScoreRequest req) {
  req.enqueued_at = std::chrono::steady_clock::now();
  std::future<double> fut = req.result.get_future();

  {
    std::lock_guard<std::mutex> lk(mu_);
    DW_CHECK_GE(family, 0);
    DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
    if (shutdown_) {
      return Status::FailedPrecondition("batcher is shut down");
    }
    FamilyQueue& q = queues_[family];
    if (q.queue.size() >= q.opts.max_queue_rows) {
      ++q.rejected_full;
      return Status::ResourceExhausted("serving queue full");
    }
    ++q.accepted;
    q.queue.push_back(std::move(req));
  }
  // One waiter is enough: either a batch is full and it takes it, or it
  // re-arms its deadline timer on the (possibly first) queued request.
  ready_cv_.notify_one();
  return fut;
}

void RequestBatcher::TakeBatch(FamilyId f, FlushReason reason, Batch* out) {
  FamilyQueue& q = queues_[f];
  const size_t take = std::min(q.queue.size(), q.opts.max_batch_size);
  out->family = f;
  out->reason = reason;
  out->requests.clear();
  out->requests.reserve(take);
  for (size_t k = 0; k < take; ++k) {
    out->requests.push_back(std::move(q.queue.front()));
    q.queue.pop_front();
  }
  switch (reason) {
    case FlushReason::kSize:
      ++q.flush_size;
      break;
    case FlushReason::kDeadline:
      ++q.flush_deadline;
      break;
    case FlushReason::kDrain:
      ++q.flush_drain;
      break;
  }
}

bool RequestBatcher::NextBatch(Batch* out) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const size_t nq = queues_.size();
    // Expired deadlines outrank everything, INCLUDING size-ready
    // neighbors: a family whose oldest request has aged past max_delay
    // already blew its latency promise, while a full batch merely became
    // eligible -- under sustained load on one hot family the size branch
    // is always ready, and checking it first would starve everyone
    // else's deadlines without bound.
    bool any_waiting = false;
    auto earliest = std::chrono::steady_clock::time_point::max();
    size_t earliest_f = 0;
    for (size_t k = 0; k < nq; ++k) {
      const size_t f = (next_queue_ + k) % nq;
      const FamilyQueue& q = queues_[f];
      if (q.queue.empty()) continue;
      const auto deadline = q.queue.front().enqueued_at + q.opts.max_delay;
      if (!any_waiting || deadline < earliest) {
        any_waiting = true;
        earliest = deadline;
        earliest_f = f;
      }
    }
    if (any_waiting && std::chrono::steady_clock::now() >= earliest) {
      next_queue_ = (earliest_f + 1) % nq;
      TakeBatch(static_cast<FamilyId>(earliest_f), FlushReason::kDeadline,
                out);
      lk.unlock();
      // Leftover rows may already form another ready batch: hand them
      // to a sibling worker immediately.
      ready_cv_.notify_one();
      return true;
    }
    // Size-triggered flush, round-robin from the cursor so a hot family
    // cannot monopolize the workers.
    for (size_t k = 0; k < nq; ++k) {
      const size_t f = (next_queue_ + k) % nq;
      if (queues_[f].queue.size() >= queues_[f].opts.max_batch_size) {
        next_queue_ = (f + 1) % nq;
        TakeBatch(static_cast<FamilyId>(f), FlushReason::kSize, out);
        lk.unlock();
        ready_cv_.notify_one();
        return true;
      }
    }
    if (shutdown_) {
      for (size_t k = 0; k < nq; ++k) {
        const size_t f = (next_queue_ + k) % nq;
        if (!queues_[f].queue.empty()) {
          next_queue_ = (f + 1) % nq;
          TakeBatch(static_cast<FamilyId>(f), FlushReason::kDrain, out);
          lk.unlock();
          ready_cv_.notify_one();
          return true;
        }
      }
      return false;  // shut down AND fully drained
    }
    if (any_waiting) {
      ready_cv_.wait_until(lk, earliest);
    } else {
      ready_cv_.wait(lk);
    }
  }
}

void RequestBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t total = 0;
  for (const FamilyQueue& q : queues_) total += q.queue.size();
  return total;
}

RequestBatcher::QueueStats RequestBatcher::queue_stats(FamilyId family) const {
  std::lock_guard<std::mutex> lk(mu_);
  DW_CHECK_GE(family, 0);
  DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
  const FamilyQueue& q = queues_[family];
  QueueStats s;
  s.accepted = q.accepted;
  s.rejected_full = q.rejected_full;
  s.flush_size = q.flush_size;
  s.flush_deadline = q.flush_deadline;
  s.flush_drain = q.flush_drain;
  s.depth = q.queue.size();
  return s;
}

const RequestBatcher::Options& RequestBatcher::options(FamilyId family) const {
  std::lock_guard<std::mutex> lk(mu_);
  DW_CHECK_GE(family, 0);
  DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
  return queues_[family].opts;
}

int RequestBatcher::num_queues() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queues_.size());
}

}  // namespace dw::serve
