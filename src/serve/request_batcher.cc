#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dw::serve {

const char* ToString(FlushReason r) {
  switch (r) {
    case FlushReason::kSize:
      return "size";
    case FlushReason::kDeadline:
      return "deadline";
    case FlushReason::kDrain:
      return "drain";
  }
  return "?";
}

Status ValidateClientId(const ClientId& client) {
  if (client.empty()) {
    return Status::InvalidArgument("client id must not be empty");
  }
  if (client.size() > kMaxClientIdBytes) {
    return Status::InvalidArgument("client id longer than " +
                                   std::to_string(kMaxClientIdBytes) +
                                   " bytes");
  }
  return Status::OK();
}

void RequestBatcher::AttachController(
    const opt::AdmissionController* controller) {
  std::lock_guard<std::mutex> lk(mu_);
  controller_ = controller;
}

void RequestBatcher::AttachRegistry(obs::Registry* registry) {
  std::lock_guard<std::mutex> lk(mu_);
  // Instruments are resolved when a queue is created, so a late attach
  // would leave earlier queues counting into a different registry.
  DW_CHECK(queues_.empty())
      << "attach the registry before the first AddQueue";
  registry_ = registry;
}

FamilyId RequestBatcher::AddQueue(const Options& opts,
                                  const std::string& name) {
  DW_CHECK_GT(opts.max_batch_size, 0u);
  DW_CHECK_GT(opts.max_queue_rows, 0u);
  DW_CHECK_GT(opts.drr_quantum_rows, 0u);
  DW_CHECK_GT(opts.max_clients, 0u);
  std::lock_guard<std::mutex> lk(mu_);
  if (registry_ == nullptr) {
    // Standalone use (tests, direct embedding): counters must still
    // count, so the batcher owns a private registry.
    own_registry_ = std::make_unique<obs::Registry>();
    registry_ = own_registry_.get();
  }
  FamilyQueue q;
  q.opts = opts;
  q.label = name.empty() ? "q" + std::to_string(queues_.size()) : name;
  const obs::Labels labels = {{"family", q.label}};
  q.accepted = registry_->GetCounter("queue.accepted", labels);
  q.rejected_full = registry_->GetCounter("queue.rejected_full", labels);
  q.rejected_cost = registry_->GetCounter("queue.rejected_cost", labels);
  q.flush_size = registry_->GetCounter("queue.flush_size", labels);
  q.flush_deadline = registry_->GetCounter("queue.flush_deadline", labels);
  q.flush_drain = registry_->GetCounter("queue.flush_drain", labels);
  q.depth = registry_->GetGauge("queue.depth", labels);
  queues_.push_back(std::move(q));
  return static_cast<FamilyId>(queues_.size() - 1);
}

RequestBatcher::ClientQueue& RequestBatcher::GetOrAddClient(
    FamilyQueue& q, const ClientId& client) {
  const auto it = q.client_index.find(client.str());
  if (it != q.client_index.end()) return q.clients[it->second];
  ClientQueue cq;
  cq.id = client;
  const obs::Labels labels = {{"family", q.label},
                              {"client", client.str()}};
  cq.accepted = registry_->GetCounter("queue.client_accepted", labels);
  cq.rejected = registry_->GetCounter("queue.client_rejected", labels);
  cq.served = registry_->GetCounter("queue.client_served", labels);
  cq.last_active = std::chrono::steady_clock::now();
  q.client_index[client.str()] = q.clients.size();
  q.clients.push_back(std::move(cq));
  q.total_weight += q.clients.back().weight;
  return q.clients.back();
}

void RequestBatcher::SetClientWeight(FamilyId family, const ClientId& client,
                                     double weight) {
  // Operator configuration, not request-path input: a bad id or weight
  // here is a programming error, so it dies instead of returning Status.
  const Status v = ValidateClientId(client);
  DW_CHECK(v.ok()) << v.ToString();
  DW_CHECK_GT(weight, 0.0) << "client weight must be positive: "
                           << client.str();
  std::lock_guard<std::mutex> lk(mu_);
  DW_CHECK_GE(family, 0);
  DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
  FamilyQueue& q = queues_[family];
  DW_CHECK(q.client_index.count(client.str()) > 0 ||
           q.clients.size() < q.opts.max_clients)
      << "client roster full for family (max_clients="
      << q.opts.max_clients << "): " << client.str();
  ClientQueue& cq = GetOrAddClient(q, client);
  q.total_weight += weight - cq.weight;
  cq.weight = weight;
  // A weight change mid-service must not leave the DRR accounting torn:
  // deficit earned at the old weight is a burst entitlement the new
  // weight never granted (a demoted hog would keep draining at its old
  // rate until its backlog emptied; symmetrically, a stale small deficit
  // under-serves a promoted client). Resetting makes the next rotation
  // visit re-earn credit at the new weight -- no stale burst, no
  // starvation window.
  cq.deficit = 0;
  // Operator-declared tenants are pinned: idle aging must not reclaim a
  // reservation that was explicitly configured.
  cq.pinned = true;
  cq.last_active = std::chrono::steady_clock::now();
}

void RequestBatcher::EvictIdleClientsLocked(
    FamilyQueue& q, std::chrono::steady_clock::time_point now) {
  if (q.opts.client_idle_timeout.count() <= 0) return;
  const auto cutoff = now - q.opts.client_idle_timeout;
  bool evicted = false;
  for (size_t i = 0; i < q.clients.size();) {
    const ClientQueue& cq = q.clients[i];
    if (!cq.pinned && cq.queue.empty() && cq.last_active < cutoff) {
      q.total_weight -= cq.weight;
      q.clients.erase(q.clients.begin() + static_cast<ptrdiff_t>(i));
      evicted = true;
    } else {
      ++i;
    }
  }
  if (!evicted) return;
  // Positions shifted: rebuild the name index and park the DRR cursor
  // (one rotation restart is noise next to a roster change).
  q.client_index.clear();
  for (size_t i = 0; i < q.clients.size(); ++i) {
    q.client_index[q.clients[i].id.str()] = i;
  }
  q.drr_cursor = 0;
}

StatusOr<std::future<double>> RequestBatcher::Submit(
    FamilyId family, std::vector<matrix::Index> indices,
    std::vector<double> values, ClientId client,
    std::chrono::steady_clock::time_point admitted_at) {
  // Empty indices with nonempty values is the explicit dense form.
  if (indices.size() != values.size() && !indices.empty()) {
    return Status::InvalidArgument("indices/values length mismatch");
  }
  ScoreRequest req;
  req.indices = std::move(indices);
  req.values = std::move(values);
  return Enqueue(family, std::move(client), std::move(req), admitted_at);
}

StatusOr<std::future<double>> RequestBatcher::Submit(
    FamilyId family, std::vector<matrix::Index> indices,
    std::vector<double> values) {
  return Submit(family, std::move(indices), std::move(values),
                kDefaultClient);
}

StatusOr<std::future<double>> RequestBatcher::SubmitId(
    FamilyId family, matrix::Index row_id, ClientId client,
    std::chrono::steady_clock::time_point admitted_at) {
  ScoreRequest req;
  req.by_id = true;
  req.row_id = row_id;
  return Enqueue(family, std::move(client), std::move(req), admitted_at);
}

StatusOr<std::future<double>> RequestBatcher::SubmitId(FamilyId family,
                                                       matrix::Index row_id) {
  return SubmitId(family, row_id, kDefaultClient);
}

StatusOr<std::future<double>> RequestBatcher::SubmitKey(
    FamilyId family, uint64_t key, ClientId client,
    std::chrono::steady_clock::time_point admitted_at) {
  ScoreRequest req;
  req.by_key = true;
  req.key = key;
  return Enqueue(family, std::move(client), std::move(req), admitted_at);
}

StatusOr<std::future<double>> RequestBatcher::SubmitKey(FamilyId family,
                                                        uint64_t key) {
  return SubmitKey(family, key, kDefaultClient);
}

StatusOr<std::future<double>> RequestBatcher::Enqueue(
    FamilyId family, ClientId client, ScoreRequest req,
    std::chrono::steady_clock::time_point admitted_at) {
  // The id crosses a trust boundary (it becomes a stats key and a queue
  // map key), so it is bounds-checked like a feature index, with a
  // Status the caller can surface.
  const Status v = ValidateClientId(client);
  if (!v.ok()) return v;
  req.client = std::move(client);
  req.enqueued_at = std::chrono::steady_clock::now();
  // Admit stage: the caller's validation work before this enqueue. Only
  // charged when the caller passed its entry time (the serving engine
  // does; direct batcher users usually have no admit stage).
  if (admitted_at != std::chrono::steady_clock::time_point{}) {
    req.admit_us = std::chrono::duration<double, std::micro>(
                       req.enqueued_at - admitted_at)
                       .count();
  }
  std::future<double> fut = req.result.get_future();

  {
    std::lock_guard<std::mutex> lk(mu_);
    DW_CHECK_GE(family, 0);
    DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
    if (shutdown_) {
      return Status::FailedPrecondition("batcher is shut down");
    }
    FamilyQueue& q = queues_[family];
    // Age out stale one-shot clients first: their reserved share flows
    // back to live tenants, and their roster slot is available to THIS
    // arrival if it is a new client.
    EvictIdleClientsLocked(q, req.enqueued_at);
    // The client roster is bounded BEFORE anything is allocated: each
    // distinct id holds a permanent subqueue and dilutes every tenant's
    // share, so a caller misusing per-request ids as client ids must be
    // refused, not accumulated.
    if (q.client_index.count(req.client.str()) == 0 &&
        q.clients.size() >= q.opts.max_clients) {
      q.rejected_full->Increment();
      return Status::ResourceExhausted("client roster full for family");
    }
    ClientQueue& cq = GetOrAddClient(q, req.client);
    // A client's admission share: its weight over the weights of ALL
    // KNOWN clients (pre-registered through SetClientWeight or seen at
    // least once). Known-but-idle clients keep their reservation on
    // purpose: if a flooding client could absorb an idle neighbor's
    // share, the neighbor's next request would find the family-wide cap
    // already exhausted and fair queuing would protect nobody. One-shot
    // clients dilute shares only until client_idle_timeout ages them out
    // of the roster (pinned tenants keep theirs indefinitely).
    const bool split_shares = q.opts.fair_queuing && q.clients.size() > 1;
    const double share =
        split_shares ? cq.weight / q.total_weight : 1.0;
    // Hard row cap: the family-wide memory bound, and under fair queuing
    // the client's weighted slice of it (at least one row, so a light
    // client is never locked out entirely by rounding).
    if (q.rows >= q.opts.max_queue_rows) {
      q.rejected_full->Increment();
      cq.rejected->Increment();
      return Status::ResourceExhausted("serving queue full");
    }
    if (split_shares) {
      const size_t client_cap = std::max<size_t>(
          1, static_cast<size_t>(
                 static_cast<double>(q.opts.max_queue_rows) * share));
      if (cq.queue.size() >= client_cap) {
        q.rejected_full->Increment();
        cq.rejected->Increment();
        return Status::ResourceExhausted("client queue share full");
      }
    }
    // Cost-aware admission: reject when the backlog AHEAD of this
    // request would take longer to drain than the family's delay budget.
    // Under fair queuing the client sees only its own backlog, but also
    // only its weighted share of the drain bandwidth. An empty queue is
    // always admissible: zero wait can never exceed a budget.
    if (controller_ != nullptr) {
      const double budget_sec = controller_->BudgetSeconds(
          family, q.opts.max_queue_rows,
          std::chrono::duration<double>(q.opts.queue_delay_budget).count());
      const double wait_sec =
          split_shares
              ? controller_->EstimatedDrainSeconds(family, cq.queue.size()) /
                    share
              : controller_->EstimatedDrainSeconds(family, q.rows);
      if (wait_sec > budget_sec) {
        q.rejected_cost->Increment();
        cq.rejected->Increment();
        return Status::ResourceExhausted(
            "estimated queueing delay over budget");
      }
    }
    ++q.submit_seq;
    // Trace sampling anchors on the first accepted request, then every
    // Nth after it, so short runs still produce at least one span.
    if (q.opts.trace_sample_every > 0 &&
        (q.submit_seq - 1) % q.opts.trace_sample_every == 0) {
      req.traced = true;
    }
    q.accepted->Increment();
    cq.accepted->Increment();
    cq.last_active = req.enqueued_at;
    cq.queue.push_back(std::move(req));
    ++q.rows;
    q.depth->Set(static_cast<double>(q.rows));
  }
  // One waiter is enough: either a batch is full and it takes it, or it
  // re-arms its deadline timer on the (possibly first) queued request.
  ready_cv_.notify_one();
  return fut;
}

bool RequestBatcher::OldestFront(
    const FamilyQueue& q, std::chrono::steady_clock::time_point* when) const {
  bool any = false;
  for (const ClientQueue& cq : q.clients) {
    if (cq.queue.empty()) continue;
    if (!any || cq.queue.front().enqueued_at < *when) {
      any = true;
      *when = cq.queue.front().enqueued_at;
    }
  }
  return any;
}

void RequestBatcher::TakeBatch(FamilyId f, FlushReason reason, Batch* out) {
  FamilyQueue& q = queues_[f];
  const size_t take = std::min(q.rows, q.opts.max_batch_size);
  out->family = f;
  out->reason = reason;
  out->formed_at = std::chrono::steady_clock::now();
  out->requests.clear();
  out->requests.reserve(take);
  size_t taken = 0;
  if (reason == FlushReason::kSize && q.opts.fair_queuing &&
      q.clients.size() > 1) {
    // Size flushes are the throughput path: deficit round robin across
    // clients, so a flooding client fills only its weighted share of
    // each batch. Every visit credits the client quantum * weight rows
    // (at least one, so tiny weights still make progress); rows it
    // cannot spend carry over as deficit until its subqueue empties.
    while (taken < take) {
      ClientQueue& cq = q.clients[q.drr_cursor % q.clients.size()];
      ++q.drr_cursor;
      if (cq.queue.empty()) {
        cq.deficit = 0;
        continue;
      }
      cq.deficit += std::max<size_t>(
          1, static_cast<size_t>(
                 static_cast<double>(q.opts.drr_quantum_rows) * cq.weight));
      size_t n = std::min({cq.deficit, cq.queue.size(), take - taken});
      cq.deficit -= n;
      cq.served->Add(n);
      taken += n;
      while (n-- > 0) {
        out->requests.push_back(std::move(cq.queue.front()));
        cq.queue.pop_front();
      }
      if (cq.queue.empty()) cq.deficit = 0;
    }
  } else {
    // Deadline and drain flushes are the latency path: rows leave
    // oldest-first across clients, so the aged request that triggered
    // the flush is in the batch, not stranded behind a rotation cursor.
    // (FIFO mode takes this arrival-ordered merge for every reason.)
    while (taken < take) {
      ClientQueue* oldest = nullptr;
      for (ClientQueue& cq : q.clients) {
        if (cq.queue.empty()) continue;
        if (oldest == nullptr || cq.queue.front().enqueued_at <
                                     oldest->queue.front().enqueued_at) {
          oldest = &cq;
        }
      }
      DW_CHECK(oldest != nullptr);
      out->requests.push_back(std::move(oldest->queue.front()));
      oldest->queue.pop_front();
      oldest->served->Increment();
      ++taken;
    }
  }
  q.rows -= take;
  q.depth->Set(static_cast<double>(q.rows));
  switch (reason) {
    case FlushReason::kSize:
      q.flush_size->Increment();
      break;
    case FlushReason::kDeadline:
      q.flush_deadline->Increment();
      break;
    case FlushReason::kDrain:
      q.flush_drain->Increment();
      break;
  }
}

bool RequestBatcher::NextBatch(Batch* out) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const size_t nq = queues_.size();
    // Expired deadlines outrank everything, INCLUDING size-ready
    // neighbors and the round-robin cursor: a family whose oldest
    // request has aged past max_delay already blew its latency promise,
    // while a full batch merely became eligible -- under sustained load
    // on one hot family the size branch is always ready, and checking it
    // first would starve everyone else's deadlines without bound. The
    // scan covers EVERY family and picks the earliest deadline, so
    // multiple expired families drain in expiry order, not cursor order.
    bool any_waiting = false;
    auto earliest = std::chrono::steady_clock::time_point::max();
    size_t earliest_f = 0;
    for (size_t f = 0; f < nq; ++f) {
      std::chrono::steady_clock::time_point front;
      if (!OldestFront(queues_[f], &front)) continue;
      const auto deadline = front + queues_[f].opts.max_delay;
      if (!any_waiting || deadline < earliest) {
        any_waiting = true;
        earliest = deadline;
        earliest_f = f;
      }
    }
    if (any_waiting && std::chrono::steady_clock::now() >= earliest) {
      next_queue_ = (earliest_f + 1) % nq;
      TakeBatch(static_cast<FamilyId>(earliest_f), FlushReason::kDeadline,
                out);
      lk.unlock();
      // Leftover rows may already form another ready batch: hand them
      // to a sibling worker immediately.
      ready_cv_.notify_one();
      return true;
    }
    // Size-triggered flush, round-robin from the cursor so a hot family
    // cannot monopolize the workers.
    for (size_t k = 0; k < nq; ++k) {
      const size_t f = (next_queue_ + k) % nq;
      if (queues_[f].rows >= queues_[f].opts.max_batch_size) {
        next_queue_ = (f + 1) % nq;
        TakeBatch(static_cast<FamilyId>(f), FlushReason::kSize, out);
        lk.unlock();
        ready_cv_.notify_one();
        return true;
      }
    }
    if (shutdown_) {
      for (size_t k = 0; k < nq; ++k) {
        const size_t f = (next_queue_ + k) % nq;
        if (queues_[f].rows > 0) {
          next_queue_ = (f + 1) % nq;
          TakeBatch(static_cast<FamilyId>(f), FlushReason::kDrain, out);
          lk.unlock();
          ready_cv_.notify_one();
          return true;
        }
      }
      return false;  // shut down AND fully drained
    }
    if (any_waiting) {
      ready_cv_.wait_until(lk, earliest);
    } else {
      ready_cv_.wait(lk);
    }
  }
}

void RequestBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t total = 0;
  for (const FamilyQueue& q : queues_) total += q.rows;
  return total;
}

RequestBatcher::QueueStats RequestBatcher::queue_stats(FamilyId family) const {
  std::lock_guard<std::mutex> lk(mu_);
  DW_CHECK_GE(family, 0);
  DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
  const FamilyQueue& q = queues_[family];
  // A thin view over the registry instruments (plus the live row count).
  // On a disabled registry every counter reads 0 -- the documented
  // contract of running with telemetry off.
  QueueStats s;
  s.accepted = q.accepted->Value();
  s.rejected_full = q.rejected_full->Value();
  s.rejected_cost = q.rejected_cost->Value();
  s.flush_size = q.flush_size->Value();
  s.flush_deadline = q.flush_deadline->Value();
  s.flush_drain = q.flush_drain->Value();
  s.depth = q.rows;
  s.clients.reserve(q.clients.size());
  for (const ClientQueue& cq : q.clients) {
    ClientStats cs;
    cs.client = cq.id;
    cs.weight = cq.weight;
    cs.accepted = cq.accepted->Value();
    cs.rejected = cq.rejected->Value();
    cs.served = cq.served->Value();
    cs.depth = cq.queue.size();
    s.clients.push_back(std::move(cs));
  }
  return s;
}

const RequestBatcher::Options& RequestBatcher::options(FamilyId family) const {
  std::lock_guard<std::mutex> lk(mu_);
  DW_CHECK_GE(family, 0);
  DW_CHECK_LT(family, static_cast<FamilyId>(queues_.size()));
  return queues_[family].opts;
}

int RequestBatcher::num_queues() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queues_.size());
}

}  // namespace dw::serve
