// STREAM-style bandwidth probe (paper Fig. 3 measures machines with
// STREAM [9]). Measures *real* host bandwidth; used to report the host row
// in bench_fig03_machines and to sanity-check the cost-model constants.
#pragma once

#include <cstddef>

namespace dw::numa {

/// Result of one probe run.
struct BandwidthResult {
  double copy_gbps = 0.0;   ///< b[i] = a[i]
  double scale_gbps = 0.0;  ///< b[i] = q*a[i]
  double add_gbps = 0.0;    ///< c[i] = a[i]+b[i]
  double triad_gbps = 0.0;  ///< c[i] = a[i]+q*b[i]
};

/// Runs the four STREAM kernels with `threads` workers over arrays of
/// `array_doubles` doubles each, repeated `iters` times; returns the best
/// observed bandwidth (STREAM convention).
BandwidthResult MeasureBandwidth(int threads, size_t array_doubles = 1 << 22,
                                 int iters = 3);

/// Measures the ratio of contended-write cost to streaming-read cost on the
/// host: `threads` workers hammer a single shared cacheline (writes) vs.
/// privately scan an array (reads). This is the empirical basis for the
/// paper's alpha parameter on real hardware.
double MeasureWriteReadCostRatio(int threads, int iters = 3);

}  // namespace dw::numa
