// Node-tagged memory allocation.
//
// On a real NUMA box DimmWitted would call numa_alloc_onnode(); libnuma is
// not available here, so the allocator performs ordinary cache-aligned
// allocation but *records* the virtual node every region belongs to. All
// placement decisions (data/worker collocation, per-node replicas, OS-vs-
// NUMA placement ablation) execute against these tags, and the per-node
// byte ledger lets tests assert that plans place memory where they claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "numa/topology.h"
#include "util/aligned.h"
#include "util/barrier.h"
#include "util/logging.h"

namespace dw::numa {

/// Tracks how many bytes live on each virtual node.
class NodeLedger {
 public:
  explicit NodeLedger(int num_nodes) : bytes_(num_nodes, 0) {}

  /// Records an allocation of `bytes` on `node`.
  void Add(NodeId node, size_t bytes) {
    std::lock_guard<SpinLock> g(mu_);
    bytes_.at(node) += bytes;
  }

  /// Records a deallocation.
  void Sub(NodeId node, size_t bytes) {
    std::lock_guard<SpinLock> g(mu_);
    DW_CHECK_GE(bytes_.at(node), bytes);
    bytes_.at(node) -= bytes;
  }

  /// Bytes currently attributed to `node`.
  size_t BytesOnNode(NodeId node) const {
    std::lock_guard<SpinLock> g(mu_);
    return bytes_.at(node);
  }

  /// Number of nodes tracked.
  int num_nodes() const { return static_cast<int>(bytes_.size()); }

 private:
  mutable SpinLock mu_;
  std::vector<size_t> bytes_;
};

/// A typed array that knows which virtual node it lives on.
template <typename T>
class NodeArray {
 public:
  NodeArray() = default;
  NodeArray(NodeId node, size_t size, NodeLedger* ledger)
      : node_(node), ledger_(ledger), storage_(size) {
    if (ledger_ != nullptr) ledger_->Add(node_, size * sizeof(T));
  }

  NodeArray(NodeArray&& o) noexcept { *this = std::move(o); }
  NodeArray& operator=(NodeArray&& o) noexcept {
    Release();
    node_ = o.node_;
    ledger_ = o.ledger_;
    storage_ = std::move(o.storage_);
    o.ledger_ = nullptr;
    return *this;
  }
  NodeArray(const NodeArray&) = delete;
  NodeArray& operator=(const NodeArray&) = delete;
  ~NodeArray() { Release(); }

  /// Virtual node owning the bytes.
  NodeId node() const { return node_; }

  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }
  size_t size() const { return storage_.size(); }
  T& operator[](size_t i) { return storage_[i]; }
  const T& operator[](size_t i) const { return storage_[i]; }

 private:
  void Release() {
    if (ledger_ != nullptr && storage_.size() > 0) {
      ledger_->Sub(node_, storage_.size() * sizeof(T));
    }
    ledger_ = nullptr;
  }

  NodeId node_ = 0;
  NodeLedger* ledger_ = nullptr;
  AlignedArray<T> storage_;
};

/// Factory bound to one topology + ledger; the engine's locality groups
/// allocate all node-local state through this.
class NumaAllocator {
 public:
  explicit NumaAllocator(const Topology& topo)
      : topo_(topo), ledger_(topo.num_nodes) {}

  /// Allocates `size` T's on virtual node `node` (zeroed).
  template <typename T>
  NodeArray<T> AllocateOnNode(NodeId node, size_t size) {
    DW_CHECK_GE(node, 0);
    DW_CHECK_LT(node, topo_.num_nodes);
    return NodeArray<T>(node, size, &ledger_);
  }

  /// Records bytes that are *logically* placed on `node` without a
  /// physical allocation (e.g. a data replica that, on this single-domain
  /// host, aliases the original buffer). Keeps the ledger faithful to the
  /// plan's placement decisions so tests and the placement ablation can
  /// inspect them.
  void NoteLogicalBytes(NodeId node, size_t bytes) {
    ledger_.Add(node, bytes);
  }

  /// Per-node allocation ledger (bytes currently live).
  const NodeLedger& ledger() const { return ledger_; }

  /// The topology this allocator serves.
  const Topology& topology() const { return topo_; }

 private:
  Topology topo_;
  NodeLedger ledger_;
};

}  // namespace dw::numa
