#include "numa/bandwidth_probe.h"

#include <atomic>
#include <thread>
#include <vector>

#include "util/aligned.h"
#include "util/barrier.h"
#include "util/timer.h"

namespace dw::numa {

namespace {

// One worker's share of a kernel, [lo, hi).
struct Range {
  size_t lo, hi;
};

std::vector<Range> Split(size_t n, int threads) {
  std::vector<Range> out;
  const size_t chunk = n / threads;
  size_t lo = 0;
  for (int t = 0; t < threads; ++t) {
    const size_t hi = (t == threads - 1) ? n : lo + chunk;
    out.push_back({lo, hi});
    lo = hi;
  }
  return out;
}

template <typename Kernel>
double TimeKernel(int threads, size_t n, int iters, size_t bytes_per_elem,
                  Kernel kernel) {
  const auto ranges = Split(n, threads);
  double best_gbps = 0.0;
  for (int it = 0; it < iters; ++it) {
    SpinBarrier barrier(threads + 1);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        barrier.Wait();
        kernel(ranges[t].lo, ranges[t].hi);
        barrier.Wait();
      });
    }
    barrier.Wait();  // start
    WallTimer timer;
    barrier.Wait();  // done
    const double sec = timer.Seconds();
    for (auto& th : pool) th.join();
    const double gbps =
        static_cast<double>(n) * bytes_per_elem / sec / 1e9;
    best_gbps = std::max(best_gbps, gbps);
  }
  return best_gbps;
}

}  // namespace

BandwidthResult MeasureBandwidth(int threads, size_t array_doubles,
                                 int iters) {
  AlignedArray<double> a(array_doubles), b(array_doubles), c(array_doubles);
  for (size_t i = 0; i < array_doubles; ++i) a[i] = 1.0 + (i & 7);
  const double q = 3.0;
  BandwidthResult r;
  r.copy_gbps = TimeKernel(threads, array_doubles, iters, 16,
                           [&](size_t lo, size_t hi) {
                             for (size_t i = lo; i < hi; ++i) b[i] = a[i];
                           });
  r.scale_gbps = TimeKernel(threads, array_doubles, iters, 16,
                            [&](size_t lo, size_t hi) {
                              for (size_t i = lo; i < hi; ++i) b[i] = q * a[i];
                            });
  r.add_gbps = TimeKernel(threads, array_doubles, iters, 24,
                          [&](size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i)
                              c[i] = a[i] + b[i];
                          });
  r.triad_gbps = TimeKernel(threads, array_doubles, iters, 24,
                            [&](size_t lo, size_t hi) {
                              for (size_t i = lo; i < hi; ++i)
                                c[i] = a[i] + q * b[i];
                            });
  return r;
}

double MeasureWriteReadCostRatio(int threads, int iters) {
  constexpr size_t kOps = 1 << 20;
  constexpr size_t kArr = 1 << 20;

  // Contended writes: all threads increment the same cacheline.
  alignas(kCacheLineBytes) static std::atomic<uint64_t> shared{0};
  const double write_sec = [&] {
    double best = 1e30;
    for (int it = 0; it < iters; ++it) {
      shared.store(0);
      SpinBarrier barrier(threads + 1);
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          barrier.Wait();
          for (size_t i = 0; i < kOps; ++i) {
            shared.fetch_add(1, std::memory_order_relaxed);
          }
          barrier.Wait();
        });
      }
      barrier.Wait();
      WallTimer timer;
      barrier.Wait();
      best = std::min(best, timer.Seconds());
      for (auto& th : pool) th.join();
    }
    return best / static_cast<double>(kOps);
  }();

  // Private reads: each thread scans its own array.
  std::vector<AlignedArray<double>> arrays;
  arrays.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    arrays.emplace_back(kArr);
    for (size_t i = 0; i < kArr; ++i) arrays[t][i] = 1.0;
  }
  const double read_sec = [&] {
    double best = 1e30;
    for (int it = 0; it < iters; ++it) {
      SpinBarrier barrier(threads + 1);
      std::vector<std::thread> pool;
      std::atomic<double> sink{0.0};
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          barrier.Wait();
          double acc = 0.0;
          for (size_t i = 0; i < kArr; ++i) acc += arrays[t][i];
          sink.store(acc, std::memory_order_relaxed);
          barrier.Wait();
        });
      }
      barrier.Wait();
      WallTimer timer;
      barrier.Wait();
      best = std::min(best, timer.Seconds());
      for (auto& th : pool) th.join();
    }
    return best / static_cast<double>(kArr);
  }();

  return read_sec > 0.0 ? write_sec / read_sec : 0.0;
}

}  // namespace dw::numa
