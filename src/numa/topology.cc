#include "numa/topology.h"

#include "util/logging.h"
#include "util/thread_util.h"

namespace dw::numa {

std::vector<CoreId> Topology::CoresOfNode(NodeId node) const {
  DW_CHECK_GE(node, 0);
  DW_CHECK_LT(node, num_nodes);
  std::vector<CoreId> cores;
  cores.reserve(cores_per_node);
  for (int c = 0; c < cores_per_node; ++c) {
    cores.push_back(node * cores_per_node + c);
  }
  return cores;
}

int Topology::PhysicalCpuOfCore(CoreId core, int physical_cpus) const {
  DW_CHECK_GT(physical_cpus, 0);
  const NodeId node = NodeOfCore(core);
  const int within = core % cores_per_node;
  // Interleave nodes across physical CPUs: node i's workers start at
  // physical CPU i and stride by num_nodes. On a 2-CPU host with a 2-node
  // virtual topology, node 0 maps to CPU 0 and node 1 to CPU 1.
  return (node + within * num_nodes) % physical_cpus;
}

namespace {

Topology Make(const std::string& name, const std::string& abbrev, int nodes,
              int cores, double ram_gb, double ghz, double llc_mb,
              double alpha) {
  Topology t;
  t.name = name;
  t.abbrev = abbrev;
  t.num_nodes = nodes;
  t.cores_per_node = cores;
  t.ram_per_node_gb = ram_gb;
  t.cpu_ghz = ghz;
  t.llc_mb = llc_mb;
  t.alpha = alpha;
  return t;
}

}  // namespace

Topology Local2() {
  return Make("local2", "l2", 2, 6, 32, 2.6, 12, 4.0);
}

Topology Local4() {
  return Make("local4", "l4", 4, 10, 64, 2.0, 24, 8.0);
}

Topology Local8() {
  return Make("local8", "l8", 8, 8, 128, 2.6, 24, 12.0);
}

Topology Ec2_1() {
  return Make("ec2.1", "e1", 2, 8, 122, 2.6, 20, 4.5);
}

Topology Ec2_2() {
  return Make("ec2.2", "e2", 2, 8, 30, 2.6, 20, 4.5);
}

std::vector<Topology> PaperMachines() {
  return {Local2(), Local4(), Local8(), Ec2_1(), Ec2_2()};
}

StatusOr<Topology> TopologyByName(const std::string& name) {
  for (const Topology& t : PaperMachines()) {
    if (t.name == name || t.abbrev == name) return t;
  }
  if (name == "host") return HostTopology();
  return Status::NotFound("unknown topology: " + name);
}

Topology HostTopology() {
  Topology t;
  t.name = "host";
  t.abbrev = "host";
  t.num_nodes = 1;
  t.cores_per_node = NumOnlineCpus();
  t.ram_per_node_gb = 16.0;
  t.cpu_ghz = 2.5;
  t.llc_mb = 16.0;
  t.alpha = 4.0;
  return t;
}

}  // namespace dw::numa
