// Calibrated NUMA memory cost model.
//
// Converts logically-counted traffic (AccessCounters) into simulated
// seconds under a named topology. This is the substitution for running on
// the paper's physical machines: statistical efficiency (epochs to a loss)
// is always measured for real by executing the algorithms, while
// hardware efficiency (seconds per epoch on machine X) is predicted from
// traffic with this model.
//
// Model (documented in DESIGN.md):
//   For each virtual node n with aggregated counters C(n):
//     t_read(n)  = C(n).local_read_bytes / min(dram_gbps_per_node,
//                                              stream_gbps_per_core * k_n)
//     t_local_w(n) = C(n).local_write_bytes / dram_gbps_per_node
//     t_shared_w(n) = (C(n).shared_write_bytes / 64)      // cachelines
//                     * coherence_ns(topology) * sharer_fraction
//     t_cpu(n)   = C(n).flops / (cpu_ghz * k_n * kFlopsPerCycle)
//   where k_n = active workers on node n. Shared writes are charged per
//   CACHELINE at a latency, not a bandwidth: every store to a line shared
//   with another socket triggers a read-for-ownership over the
//   interconnect, stalling the pipeline for O(100ns) -- this, not raw
//   bandwidth, is what makes PerMachine epochs ~20x slower than PerNode
//   in the paper's Fig. 8(b). coherence_ns scales with the paper's alpha
//   (Sec. 3.2: ~4 on 2 sockets up to ~12 on 8), so bigger machines stall
//   longer. Cross-socket reads share one interconnect:
//     t_qpi = sum_n C(n).remote_read_bytes / qpi_gbps
//   Model state that fits in the LLC is served at kLlcSpeedup x DRAM speed.
//   SimulatedSeconds = max( max_n [t_read + t_w + t_cpu](n), t_qpi )
//                      + kEpochOverheadSec.
#pragma once

#include <cstdint>

#include "numa/access_counters.h"
#include "numa/topology.h"

namespace dw::numa {

/// Tunable constants of the cost model (defaults calibrated so that the
/// paper's headline ratios reproduce on the paper's topologies; see
/// bench_alpha_estimation and EXPERIMENTS.md).
struct MemoryModelParams {
  double flops_per_cycle = 4.0;    ///< scalar FMA pipeline throughput
  double llc_speedup = 4.0;        ///< LLC bandwidth multiple of DRAM
  double epoch_overhead_sec = 2e-5;///< barrier + dispatch cost per epoch
  /// Per-cacheline stall for a store to a line shared with another
  /// socket, expressed as a multiple of alpha: coherence_ns = alpha *
  /// coherence_ns_per_alpha (local2: 4 * 25 = 100ns, the measured scale
  /// of a cross-socket read-for-ownership).
  double coherence_ns_per_alpha = 25.0;
  /// Coherence cost scales with the fraction of remote sharers.
  bool scale_alpha_by_sharers = true;
};

/// Per-node inputs the engine hands to the model in addition to raw
/// traffic: how many workers were active and how many sockets share each
/// replica the node wrote to.
struct SimulationInput {
  NodeTraffic traffic;           ///< per-node aggregated counters
  std::vector<int> active_workers;  ///< workers that ran on each node
  int model_sharing_sockets = 1; ///< sockets sharing one model replica
  uint64_t model_bytes = 0;      ///< size of one model replica
  explicit SimulationInput(int nodes)
      : traffic(nodes), active_workers(nodes, 0) {}
};

/// Breakdown of the simulated epoch time (all seconds).
struct SimulatedTime {
  double read_sec = 0.0;
  double write_sec = 0.0;
  double cpu_sec = 0.0;
  double qpi_sec = 0.0;
  double total_sec = 0.0;
};

/// Applies the cost model for one topology.
class MemoryModel {
 public:
  explicit MemoryModel(Topology topo, MemoryModelParams params = {})
      : topo_(std::move(topo)), params_(params) {}

  /// Simulated seconds for one epoch described by `input`.
  SimulatedTime SimulateEpoch(const SimulationInput& input) const;

  /// Effective write-cost multiplier for a replica shared by `sockets`
  /// sockets (1 => private, no amplification). Used by the byte-level
  /// cost comparisons (Fig. 6); the time simulation uses the per-line
  /// latency below.
  double WriteAmplification(int sockets) const;

  /// Seconds of stall per cacheline written to a replica shared by
  /// `sockets` sockets (0 for private replicas).
  double SharedWriteSecondsPerLine(int sockets) const;

  const Topology& topology() const { return topo_; }
  const MemoryModelParams& params() const { return params_; }

 private:
  Topology topo_;
  MemoryModelParams params_;
};

}  // namespace dw::numa
