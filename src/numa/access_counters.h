// Logical memory-traffic accounting.
//
// The paper explains its hardware-efficiency results with Intel PMU
// counters (local/remote DRAM requests, LLC misses). Real PMUs are not
// available here, so the engine's data and model access paths account
// traffic logically: every worker knows its own virtual node and the node
// that owns the bytes it touches, and bumps plain (thread-local) counters.
// The counters feed both the PMU-style reports and the MemoryModel.
#pragma once

#include <cstdint>
#include <vector>

namespace dw::numa {

/// Traffic accumulated by one worker during one epoch. Plain integers:
/// each worker owns one instance, so no synchronization is needed.
struct AccessCounters {
  uint64_t local_read_bytes = 0;    ///< reads served by the worker's node
  uint64_t remote_read_bytes = 0;   ///< reads crossing the interconnect
  uint64_t local_write_bytes = 0;   ///< writes to node-private state
  uint64_t shared_write_bytes = 0;  ///< writes to state shared across nodes
  uint64_t model_read_bytes = 0;    ///< reads of the model replica
  uint64_t updates = 0;             ///< number of gradient/coordinate steps
  uint64_t flops = 0;               ///< floating-point work (fused mul-add=2)

  /// Accumulates `other` into this.
  void Merge(const AccessCounters& other) {
    local_read_bytes += other.local_read_bytes;
    remote_read_bytes += other.remote_read_bytes;
    local_write_bytes += other.local_write_bytes;
    shared_write_bytes += other.shared_write_bytes;
    model_read_bytes += other.model_read_bytes;
    updates += other.updates;
    flops += other.flops;
  }

  /// Zeroes all counters.
  void Reset() { *this = AccessCounters{}; }

  /// PMU analogue: cross-node DRAM requests (64B cacheline granularity).
  uint64_t remote_dram_requests() const { return remote_read_bytes / 64; }

  /// PMU analogue: node-local DRAM requests.
  uint64_t local_dram_requests() const { return local_read_bytes / 64; }

  uint64_t total_read_bytes() const {
    return local_read_bytes + remote_read_bytes;
  }
  uint64_t total_write_bytes() const {
    return local_write_bytes + shared_write_bytes;
  }
};

/// Per-node aggregation of worker counters (input to the MemoryModel).
struct NodeTraffic {
  std::vector<AccessCounters> per_node;

  explicit NodeTraffic(int num_nodes = 0) : per_node(num_nodes) {}

  /// Adds a worker's epoch counters to its node's bucket.
  void Add(int node, const AccessCounters& c) { per_node[node].Merge(c); }

  /// Sum over all nodes.
  AccessCounters Total() const {
    AccessCounters t;
    for (const auto& c : per_node) t.Merge(c);
    return t;
  }
};

}  // namespace dw::numa
