#include "numa/memory_model.h"

#include <algorithm>

#include "util/logging.h"

namespace dw::numa {

namespace {
constexpr double kGb = 1e9;
}

double MemoryModel::WriteAmplification(int sockets) const {
  if (sockets <= 1) return 1.0;
  if (!params_.scale_alpha_by_sharers) return topo_.alpha;
  const int nodes = std::max(2, topo_.num_nodes);
  const double frac =
      static_cast<double>(sockets - 1) / static_cast<double>(nodes - 1);
  return 1.0 + (topo_.alpha - 1.0) * frac;
}

double MemoryModel::SharedWriteSecondsPerLine(int sockets) const {
  if (sockets <= 1) return 0.0;
  // Invalidation cost grows with the number of remote sharers: each
  // additional socket lengthens the snoop/invalidate chain and deepens
  // the queueing on the interconnect, so the per-line stall scales with
  // (sockets - 1) on top of the per-hop alpha growth. On local2 this is
  // alpha * 25ns = 100ns -- the measured scale of one cross-socket RFO.
  return topo_.alpha * params_.coherence_ns_per_alpha * 1e-9 *
         static_cast<double>(sockets - 1);
}

SimulatedTime MemoryModel::SimulateEpoch(const SimulationInput& input) const {
  DW_CHECK_EQ(static_cast<int>(input.traffic.per_node.size()),
              topo_.num_nodes);
  SimulatedTime out;

  const double shared_sec_per_line =
      SharedWriteSecondsPerLine(input.model_sharing_sockets);
  // A model replica that fits in half the LLC is served from cache.
  const bool model_in_llc =
      input.model_bytes > 0 &&
      static_cast<double>(input.model_bytes) < 0.5 * topo_.llc_bytes();
  const double model_speedup = model_in_llc ? params_.llc_speedup : 1.0;

  double slowest_node = 0.0;
  double total_remote = 0.0;
  for (int n = 0; n < topo_.num_nodes; ++n) {
    const AccessCounters& c = input.traffic.per_node[n];
    const int workers = std::max(1, input.active_workers[n]);
    const double node_read_bw =
        std::min(topo_.dram_gbps_per_node,
                 topo_.stream_gbps_per_core * workers) *
        kGb;
    const double t_read =
        static_cast<double>(c.local_read_bytes) / node_read_bw +
        static_cast<double>(c.model_read_bytes) /
            (node_read_bw * model_speedup);
    const double write_bw = topo_.dram_gbps_per_node * kGb * model_speedup;
    // Local writes stream at bandwidth; shared writes stall per line.
    const double t_write =
        static_cast<double>(c.local_write_bytes) / write_bw +
        static_cast<double>(c.shared_write_bytes) / 64.0 *
            shared_sec_per_line;
    const double t_cpu =
        static_cast<double>(c.flops) /
        (topo_.cpu_ghz * 1e9 * workers * params_.flops_per_cycle);
    slowest_node = std::max(slowest_node, t_read + t_write + t_cpu);
    total_remote += static_cast<double>(c.remote_read_bytes);
    out.read_sec = std::max(out.read_sec, t_read);
    out.write_sec = std::max(out.write_sec, t_write);
    out.cpu_sec = std::max(out.cpu_sec, t_cpu);
  }
  out.qpi_sec = total_remote / (topo_.qpi_gbps * kGb);
  out.total_sec = std::max(slowest_node, out.qpi_sec) +
                  params_.epoch_overhead_sec;
  return out;
}

}  // namespace dw::numa
