// Virtual NUMA topology descriptions.
//
// The paper evaluates on five physical machines (Fig. 3). This environment
// has a single small memory domain, so DimmWitted models machines as
// *virtual topologies*: the placement logic (which node a worker lives on,
// where data and model replicas are allocated) runs against the virtual
// topology, worker threads are round-robined over the physical CPUs, and
// hardware-efficiency numbers for a named machine come from the calibrated
// MemoryModel (memory_model.h) applied to logically-counted traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dw::numa {

/// Identifies a virtual NUMA node (socket).
using NodeId = int;
/// Identifies a virtual core; cores are numbered node-major:
/// core c lives on node c / cores_per_node.
using CoreId = int;

/// A machine description mirroring the columns of the paper's Figure 3,
/// plus the memory-system constants the cost model needs.
struct Topology {
  std::string name;        ///< e.g. "local2"
  std::string abbrev;      ///< e.g. "l2"
  int num_nodes = 1;       ///< sockets
  int cores_per_node = 1;  ///< physical cores per socket
  double ram_per_node_gb = 32.0;
  double cpu_ghz = 2.6;
  double llc_mb = 12.0;    ///< last-level cache per socket

  // Memory-system constants (see Fig. 3: worker->RAM ~6 GB/s measured with
  // STREAM; QPI ~11 GB/s measured, 25.6 GB/s peak).
  double stream_gbps_per_core = 6.0;  ///< single-core streaming bandwidth
  double dram_gbps_per_node = 24.0;   ///< per-socket aggregate DRAM bandwidth
  double qpi_gbps = 11.0;             ///< effective cross-socket bandwidth

  /// Write/read cost ratio alpha of paper Sec. 3.2 ("in 4 to 12 and grows
  /// with the number of sockets; for local2 alpha ~ 4, for local8 ~ 12").
  double alpha = 4.0;

  /// Total virtual cores.
  int total_cores() const { return num_nodes * cores_per_node; }

  /// Node that owns virtual core `core`.
  NodeId NodeOfCore(CoreId core) const { return core / cores_per_node; }

  /// Virtual cores living on `node`, in order.
  std::vector<CoreId> CoresOfNode(NodeId node) const;

  /// LLC capacity of one socket in bytes.
  double llc_bytes() const { return llc_mb * 1024.0 * 1024.0; }

  /// Maps a virtual core onto a physical CPU id (round-robin interleaved by
  /// node so that, even on a small host, workers of different virtual nodes
  /// land on different physical CPUs when possible).
  int PhysicalCpuOfCore(CoreId core, int physical_cpus) const;
};

/// Named presets reproducing the paper's Figure 3 machine table.
///   local2: 2 nodes x  6 cores, 12 MB LLC, 2.6 GHz, alpha ~ 4
///   local4: 4 nodes x 10 cores, 24 MB LLC, 2.0 GHz, alpha ~ 8
///   local8: 8 nodes x  8 cores, 24 MB LLC, 2.6 GHz, alpha ~ 12
///   ec2.1 : 2 nodes x  8 cores, 20 MB LLC, 2.6 GHz, alpha ~ 4.5
///   ec2.2 : 2 nodes x  8 cores, 20 MB LLC, 2.6 GHz, alpha ~ 4.5
Topology Local2();
Topology Local4();
Topology Local8();
Topology Ec2_1();
Topology Ec2_2();

/// All five paper machines, in the order of Figure 3.
std::vector<Topology> PaperMachines();

/// Looks up a preset by name or abbreviation ("local2" or "l2").
StatusOr<Topology> TopologyByName(const std::string& name);

/// A topology describing the *actual* host (single node when /sys exposes
/// no NUMA information, which is the common case in this environment).
Topology HostTopology();

}  // namespace dw::numa
