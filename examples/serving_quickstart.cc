// Serving quickstart: train two models with the DimmWitted engine and
// serve them side by side from one NUMA-replicated scoring service.
//
//   1. train a wide logistic-regression model and a narrow SVM,
//   2. register both as named families -- the registry picks each
//      family's replication with the opt:: cost model (no hard-coding),
//   3. register a serving-time FeatureStore for the wide family: known
//      entities' feature rows live WITH the scoring workers (placement
//      chosen by the cost model too), so requests can be id-keyed --
//      Score(family, row_id) ships one integer instead of a feature
//      vector, and the worker gathers the row from its own node,
//   4. wire each trainer to its family through a SnapshotExporter, which
//      publishes fresh snapshots on a period WHILE training runs,
//   5. score rows against either family -- id-keyed for stored entities,
//      carried-feature for novel ones -- through the same batcher,
//   6. read per-family stats: throughput, latency, snapshot staleness,
//      and where the id-keyed feature gathers landed.
//
// Build & run:  ./examples/serving_quickstart
#include <cstdio>
#include <vector>

#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "models/glm.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_exporter.h"

int main() {
  using namespace dw;
  using matrix::Index;

  // 1. Two trainers. PerNode replication, row-wise access: the paper's
  //    sweet spot for GLMs.
  const data::Dataset wide_data = data::Rcv1(/*scale=*/0.003);
  models::LogisticSpec lr;
  engine::EngineOptions train_opts;
  train_opts.topology = numa::Local2();
  engine::Engine wide_trainer(&wide_data, &lr, train_opts);

  const Index narrow_dim = 24;
  data::Dataset narrow_data;
  narrow_data.name = "fraud";
  narrow_data.a = data::MakeDenseTable(
      {.rows = 1500, .cols = narrow_dim, .feature_correlation = 0.2,
       .seed = 42});
  narrow_data.b =
      data::PlantClassificationLabels(narrow_data.a, narrow_dim, 0.0, 43);
  models::SvmSpec svm;
  engine::Engine narrow_trainer(&narrow_data, &svm, train_opts);

  Status st = wide_trainer.Init();
  if (st.ok()) st = narrow_trainer.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "Init failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Register both families. No Replication argument anywhere: each
  //    family describes its expected traffic (dimension, batch width,
  //    reads per publish) and opt::ChooseServingReplication costs both
  //    strategies through the calibrated memory model. The wide
  //    read-heavy family comes out PerNode (one replica per socket); the
  //    narrow family, republished every few ms by its exporter, comes
  //    out PerMachine (replicating snapshots nobody read yet is waste).
  serve::ServingOptions serve_opts;
  serve_opts.topology = numa::Local2();
  serve_opts.batch.max_batch_size = 32;
  serve_opts.batch.max_delay = std::chrono::microseconds(200);
  serve::ServingEngine server(serve_opts);

  const Index wide_dim = wide_data.a.cols();
  serve::ServingFamilyOptions wide_family;
  wide_family.traffic.dim = wide_dim;
  wide_family.traffic.expected_batch_rows = 32.0;
  wide_family.traffic.reads_per_publish = 2048.0;  // read-heavy
  // Two tenants share the wide family 3:1. Admission and batch formation
  // are per client (deficit-round-robin fair queuing), so a bursty
  // tenant exhausts only its own share of the family's queue -- and the
  // queue bound itself is a queueing-DELAY budget costed by
  // opt::AdmissionController, not a blind row count.
  wide_family.client_weights = {{serve::ClientId("ranker"), 3.0},
                                {serve::ClientId("explorer"), 1.0}};
  serve::ServingFamilyOptions narrow_family;
  narrow_family.traffic.dim = narrow_dim;
  narrow_family.traffic.expected_batch_rows = 32.0;
  narrow_family.traffic.reads_per_publish = 0.25;  // hot-refresh
  st = server.RegisterFamily("ctr-wide-lr", &lr, wide_family);
  if (st.ok()) st = server.RegisterFamily("fraud-narrow-svm", &svm, narrow_family);
  if (!st.ok()) {
    std::fprintf(stderr, "RegisterFamily failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const char* name : {"ctr-wide-lr", "fraud-narrow-svm"}) {
    const serve::ModelFamily* f = server.registry().FindFamily(name);
    std::printf("%-17s -> %s (%s)\n", name, serve::ToString(f->replication()),
                f->rationale().c_str());
  }

  // 3. A FeatureStore for the wide family: the first kStoreRows of the
  //    corpus stand in for known entities (users, documents) whose
  //    features the serving tier already holds. Like replication, the
  //    PLACEMENT (full copy per socket vs rows sharded across sockets)
  //    is chosen by the cost model from a traffic estimate; stores
  //    hot-swap atomically, so a nightly rebuild could PublishStore()
  //    under live traffic. The store dim must equal the model dim: an
  //    id-keyed row feeds PredictBatch directly, with zero copies.
  const Index kStoreRows = 64;
  st = server.RegisterStore("ctr-wide-lr", kStoreRows, wide_dim);
  if (!st.ok()) {
    std::fprintf(stderr, "RegisterStore failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<double> table(static_cast<size_t>(kStoreRows) * wide_dim, 0.0);
  for (Index r = 0; r < kStoreRows; ++r) {
    const auto row = wide_data.a.Row(r);
    for (uint32_t k = 0; k < row.nnz; ++k) {
      table[static_cast<size_t>(r) * wide_dim + row.indices[k]] =
          row.values[k];
    }
  }
  server.PublishStore("ctr-wide-lr", table);
  {
    const serve::FeatureStore* store = server.FindStore("ctr-wide-lr");
    std::printf("%-17s store %ux%u -> %s (%s)\n", "ctr-wide-lr",
                store->rows(), store->dim(), serve::ToString(store->placement()),
                store->rationale().c_str());
  }

  // 4. One exporter per family: publish_on_start seeds version 1, then
  //    each publishes mid-training on its own period. Export() is
  //    thread-safe (it reads the engine's consensus export buffer), so
  //    epochs never block on serving.
  serve::SnapshotExporter::Options wide_eopts;
  wide_eopts.period = std::chrono::milliseconds(20);
  serve::SnapshotExporter wide_exporter(&wide_trainer, &server, "ctr-wide-lr",
                                        wide_eopts);
  serve::SnapshotExporter::Options narrow_eopts;
  narrow_eopts.period = std::chrono::milliseconds(2);
  serve::SnapshotExporter narrow_exporter(&narrow_trainer, &server,
                                          "fraud-narrow-svm", narrow_eopts);
  wide_exporter.Start();
  narrow_exporter.Start();
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving %d families on %d threads\n", server.num_families(),
              server.num_workers());

  //    Train both models while serving; the exporters hot-swap improved
  //    snapshots underneath the in-flight traffic.
  engine::RunConfig cfg;
  cfg.max_epochs = 10;
  std::thread narrow_training([&] { narrow_trainer.Run(cfg); });
  const engine::RunResult wide_result = wide_trainer.Run(cfg);
  narrow_training.join();
  std::printf("trained %s for %zu epochs, final loss %.4f\n",
              lr.name().c_str(), wide_result.epochs.size(),
              wide_result.BestLoss());
  //    Training is done: stopping an exporter flushes one final export,
  //    so the freshly-trained weights are what gets served below.
  wide_exporter.Stop();
  narrow_exporter.Stop();

  // 5. Score stored entities BY ID against the wide family: the request
  //    is one integer, the worker gathers the features from its own
  //    node's copy of the store, and the score is identical to shipping
  //    the row by hand (shown by scoring both ways).
  for (Index i = 0; i < 3; ++i) {
    //    The trailing ClientId attributes the request for fair queuing;
    //    the client-less overload lands on serve::kDefaultClient.
    const auto by_id =
        server.ScoreSync("ctr-wide-lr", i, serve::ClientId("ranker"));
    if (!by_id.ok()) {
      std::fprintf(stderr, "Score failed: %s\n",
                   by_id.status().ToString().c_str());
      return 1;
    }
    const auto row = wide_data.a.Row(i);
    std::vector<Index> idx(row.indices, row.indices + row.nnz);
    std::vector<double> vals(row.values, row.values + row.nnz);
    const auto carried = server.ScoreSync("ctr-wide-lr", idx, vals);
    if (!carried.ok()) {
      std::fprintf(stderr, "Score failed: %s\n",
                   carried.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "ctr-wide-lr row %u: P(y=+1) = %.3f by id, %.3f carried (label "
        "%+.0f)\n",
        i, by_id.value(), carried.value(), wide_data.b[i]);
  }
  //    Novel rows (not in any store) still take the carried form, here
  //    against the narrow family.
  for (Index i = 0; i < 3; ++i) {
    const auto row = narrow_data.a.Row(i);
    std::vector<Index> idx(row.indices, row.indices + row.nnz);
    std::vector<double> vals(row.values, row.values + row.nnz);
    const auto score = server.ScoreSync("fraud-narrow-svm", idx, vals);
    if (!score.ok()) {
      std::fprintf(stderr, "Score failed: %s\n",
                   score.status().ToString().c_str());
      return 1;
    }
    std::printf("fraud-narrow-svm row %u: margin = %+.3f (label %+.0f)\n", i,
                score.value(), narrow_data.b[i]);
  }

  // 6. Stop serving; per-family stats include the staleness the async
  //    pipeline traded for never blocking an epoch, and where the
  //    id-keyed feature gathers landed (all node-local under a
  //    replicated store -- the collocation the store exists for).
  server.Stop();
  const serve::ServingStats stats = server.Stats();
  std::printf("served %llu requests in %llu batches total\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches));
  for (const serve::FamilyServingStats& f : stats.families) {
    std::printf(
        "%-17s v%llu: %llu rows (%llu by id: %llu local / %llu remote "
        "gathers), p50 %.3f ms, p99 %.3f ms, staleness mean %.1f ms "
        "(max %.1f), rejected %llu\n",
        f.family.c_str(), static_cast<unsigned long long>(f.served_version),
        static_cast<unsigned long long>(f.requests),
        static_cast<unsigned long long>(f.id_rows),
        static_cast<unsigned long long>(f.local_store_rows),
        static_cast<unsigned long long>(f.remote_store_rows),
        f.p50_latency_ms, f.p99_latency_ms, f.mean_staleness_ms,
        f.max_staleness_ms, static_cast<unsigned long long>(f.rejected));
    for (const serve::ClientServingStats& c : f.clients) {
      std::printf("                  client %-9s (weight %.1f): %llu "
                  "accepted, %llu served, %llu rejected\n",
                  c.client.c_str(), c.weight,
                  static_cast<unsigned long long>(c.accepted),
                  static_cast<unsigned long long>(c.served),
                  static_cast<unsigned long long>(c.rejected));
    }
    std::printf("                  service estimate %.2f us/row (prior "
                "%.2f, measured EWMA %.2f over %llu batches)\n",
                f.est_row_us, f.prior_row_us, f.measured_row_us_ewma,
                static_cast<unsigned long long>(f.cost_reports));
  }
  return 0;
}
