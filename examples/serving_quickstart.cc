// Serving quickstart: train two models with the DimmWitted engine and
// serve them side by side from one NUMA-replicated scoring service.
//
//   1. train a wide logistic-regression model and a narrow SVM,
//   2. register both as named families -- the registry picks each
//      family's replication with the opt:: cost model (no hard-coding),
//   3. wire each trainer to its family through a SnapshotExporter, which
//      publishes fresh snapshots on a period WHILE training runs,
//   4. score single rows against either family through the batcher,
//   5. read per-family stats: throughput, latency, snapshot staleness.
//
// Build & run:  ./examples/serving_quickstart
#include <cstdio>
#include <vector>

#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "models/glm.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_exporter.h"

int main() {
  using namespace dw;
  using matrix::Index;

  // 1. Two trainers. PerNode replication, row-wise access: the paper's
  //    sweet spot for GLMs.
  const data::Dataset wide_data = data::Rcv1(/*scale=*/0.003);
  models::LogisticSpec lr;
  engine::EngineOptions train_opts;
  train_opts.topology = numa::Local2();
  engine::Engine wide_trainer(&wide_data, &lr, train_opts);

  const Index narrow_dim = 24;
  data::Dataset narrow_data;
  narrow_data.name = "fraud";
  narrow_data.a = data::MakeDenseTable(
      {.rows = 1500, .cols = narrow_dim, .feature_correlation = 0.2,
       .seed = 42});
  narrow_data.b =
      data::PlantClassificationLabels(narrow_data.a, narrow_dim, 0.0, 43);
  models::SvmSpec svm;
  engine::Engine narrow_trainer(&narrow_data, &svm, train_opts);

  Status st = wide_trainer.Init();
  if (st.ok()) st = narrow_trainer.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "Init failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Register both families. No Replication argument anywhere: each
  //    family describes its expected traffic (dimension, batch width,
  //    reads per publish) and opt::ChooseServingReplication costs both
  //    strategies through the calibrated memory model. The wide
  //    read-heavy family comes out PerNode (one replica per socket); the
  //    narrow family, republished every few ms by its exporter, comes
  //    out PerMachine (replicating snapshots nobody read yet is waste).
  serve::ServingOptions serve_opts;
  serve_opts.topology = numa::Local2();
  serve_opts.batch.max_batch_size = 32;
  serve_opts.batch.max_delay = std::chrono::microseconds(200);
  serve::ServingEngine server(serve_opts);

  serve::ServingFamilyOptions wide_family;
  wide_family.traffic.dim = wide_data.a.cols();
  wide_family.traffic.expected_batch_rows = 32.0;
  wide_family.traffic.reads_per_publish = 2048.0;  // read-heavy
  serve::ServingFamilyOptions narrow_family;
  narrow_family.traffic.dim = narrow_dim;
  narrow_family.traffic.expected_batch_rows = 32.0;
  narrow_family.traffic.reads_per_publish = 0.25;  // hot-refresh
  st = server.RegisterFamily("ctr-wide-lr", &lr, wide_family);
  if (st.ok()) st = server.RegisterFamily("fraud-narrow-svm", &svm, narrow_family);
  if (!st.ok()) {
    std::fprintf(stderr, "RegisterFamily failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const char* name : {"ctr-wide-lr", "fraud-narrow-svm"}) {
    const serve::ModelFamily* f = server.registry().FindFamily(name);
    std::printf("%-17s -> %s (%s)\n", name, serve::ToString(f->replication()),
                f->rationale().c_str());
  }

  // 3. One exporter per family: publish_on_start seeds version 1, then
  //    each publishes mid-training on its own period. Export() is
  //    thread-safe (it reads the engine's consensus export buffer), so
  //    epochs never block on serving.
  serve::SnapshotExporter::Options wide_eopts;
  wide_eopts.period = std::chrono::milliseconds(20);
  serve::SnapshotExporter wide_exporter(&wide_trainer, &server, "ctr-wide-lr",
                                        wide_eopts);
  serve::SnapshotExporter::Options narrow_eopts;
  narrow_eopts.period = std::chrono::milliseconds(2);
  serve::SnapshotExporter narrow_exporter(&narrow_trainer, &server,
                                          "fraud-narrow-svm", narrow_eopts);
  wide_exporter.Start();
  narrow_exporter.Start();
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving %d families on %d threads\n", server.num_families(),
              server.num_workers());

  // 4. Train both models while serving; the exporters hot-swap improved
  //    snapshots underneath the in-flight traffic.
  engine::RunConfig cfg;
  cfg.max_epochs = 10;
  std::thread narrow_training([&] { narrow_trainer.Run(cfg); });
  const engine::RunResult wide_result = wide_trainer.Run(cfg);
  narrow_training.join();
  std::printf("trained %s for %zu epochs, final loss %.4f\n",
              lr.name().c_str(), wide_result.epochs.size(),
              wide_result.BestLoss());
  //    Training is done: stopping an exporter flushes one final export,
  //    so the freshly-trained weights are what gets served below.
  wide_exporter.Stop();
  narrow_exporter.Stop();

  //    Score a few rows against each family (in production these would
  //    be fresh requests). LogisticSpec::Predict returns P(y = +1 | row).
  for (Index i = 0; i < 3; ++i) {
    const auto row = wide_data.a.Row(i);
    std::vector<Index> idx(row.indices, row.indices + row.nnz);
    std::vector<double> vals(row.values, row.values + row.nnz);
    const auto score = server.ScoreSync("ctr-wide-lr", idx, vals);
    if (!score.ok()) {
      std::fprintf(stderr, "Score failed: %s\n",
                   score.status().ToString().c_str());
      return 1;
    }
    std::printf("ctr-wide-lr row %u: P(y=+1) = %.3f (label %+.0f)\n", i,
                score.value(), wide_data.b[i]);
  }
  for (Index i = 0; i < 3; ++i) {
    const auto row = narrow_data.a.Row(i);
    std::vector<Index> idx(row.indices, row.indices + row.nnz);
    std::vector<double> vals(row.values, row.values + row.nnz);
    const auto score = server.ScoreSync("fraud-narrow-svm", idx, vals);
    if (!score.ok()) {
      std::fprintf(stderr, "Score failed: %s\n",
                   score.status().ToString().c_str());
      return 1;
    }
    std::printf("fraud-narrow-svm row %u: margin = %+.3f (label %+.0f)\n", i,
                score.value(), narrow_data.b[i]);
  }

  // 5. Stop serving; per-family stats include the staleness the async
  //    pipeline traded for never blocking an epoch.
  server.Stop();
  const serve::ServingStats stats = server.Stats();
  std::printf("served %llu requests in %llu batches total\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches));
  for (const serve::FamilyServingStats& f : stats.families) {
    std::printf(
        "%-17s v%llu: %llu rows, p50 %.3f ms, p99 %.3f ms, "
        "staleness mean %.1f ms (max %.1f), rejected %llu\n",
        f.family.c_str(), static_cast<unsigned long long>(f.served_version),
        static_cast<unsigned long long>(f.requests), f.p50_latency_ms,
        f.p99_latency_ms, f.mean_staleness_ms, f.max_staleness_ms,
        static_cast<unsigned long long>(f.rejected));
  }
  return 0;
}
