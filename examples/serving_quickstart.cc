// Serving quickstart: train a model with the DimmWitted engine, then serve
// it from a NUMA-replicated scoring service.
//
//   1. train a logistic-regression model (exactly like examples/quickstart),
//   2. export the consensus model and publish it to a ServingEngine,
//   3. score single rows through the request batcher,
//   4. hot-swap a newer model version without stopping the server.
//
// Build & run:  ./examples/serving_quickstart
#include <cstdio>
#include <vector>

#include "data/paper_datasets.h"
#include "engine/engine.h"
#include "models/glm.h"
#include "serve/serving_engine.h"

int main() {
  using namespace dw;
  using matrix::Index;

  // 1. Train. PerNode replication, row-wise access: the paper's sweet spot
  //    for GLMs.
  const data::Dataset dataset = data::Rcv1(/*scale=*/0.003);
  models::LogisticSpec lr;
  engine::EngineOptions train_opts;
  train_opts.topology = numa::Local2();
  engine::Engine trainer(&dataset, &lr, train_opts);
  Status st = trainer.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "Init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  engine::RunConfig cfg;
  cfg.max_epochs = 10;
  const engine::RunResult result = trainer.Run(cfg);
  std::printf("trained %s for %zu epochs, final loss %.4f\n",
              lr.name().c_str(), result.epochs.size(), result.BestLoss());

  // 2. Publish the trained model to a serving engine. Weights are copied
  //    into one immutable replica per NUMA node; scoring threads are
  //    pinned and route every batch to their node-local copy.
  serve::ServingOptions serve_opts;
  serve_opts.topology = numa::Local2();
  serve_opts.replication = serve::Replication::kPerNode;
  serve_opts.batch.max_batch_size = 32;
  serve_opts.batch.max_delay = std::chrono::microseconds(200);
  // Batched scoring (the default): each flushed mini-batch is scored with
  // one ModelSpec::PredictBatch call, so the GLM kernel tiles the replica
  // through the cache instead of re-reading it per row.
  serve_opts.scoring = serve::ScoringMode::kBatched;
  serve::ServingEngine server(&lr, serve_opts);
  const uint64_t v1 = server.Publish(trainer.Export());
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving version %llu on %d threads (%s scoring)\n",
              static_cast<unsigned long long>(v1), server.num_workers(),
              serve::ToString(serve_opts.scoring));

  // 3. Score the first few training rows (in production these would be
  //    fresh requests). LogisticSpec::Predict returns P(y = +1 | row).
  for (Index i = 0; i < 5; ++i) {
    const auto row = dataset.a.Row(i);
    std::vector<Index> idx(row.indices, row.indices + row.nnz);
    std::vector<double> vals(row.values, row.values + row.nnz);
    const auto score = server.ScoreSync(idx, vals);
    if (!score.ok()) {
      std::fprintf(stderr, "Score failed: %s\n",
                   score.status().ToString().c_str());
      return 1;
    }
    std::printf("row %u: P(y=+1) = %.3f (label %+.0f)\n", i, score.value(),
                dataset.b[i]);
  }

  // 4. Keep training and hot-swap the improved model; in-flight batches
  //    finish on the version they started with.
  cfg.max_epochs = 10;
  trainer.Run(cfg);
  const uint64_t v2 = server.Publish(trainer.Export());
  std::printf("hot-swapped to version %llu while serving\n",
              static_cast<unsigned long long>(v2));

  server.Stop();
  const serve::ServingStats stats = server.Stats();
  std::printf("served %llu requests in %llu batches, p50 %.3f ms, p99 %.3f ms\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.p50_latency_ms, stats.p99_latency_ms);
  return 0;
}
