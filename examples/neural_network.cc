// Deep neural network training (the paper's Sec. 5.2 extension): a
// seven-layer MLP on MNIST-shaped digits, trained under the classic
// choice (shared weights + sharded data) and under DimmWitted's choice
// (per-node replicas + full data replication).
//
// Build & run:  ./examples/neural_network
#include <cstdio>

#include "nn/mlp.h"
#include "nn/trainer.h"

int main() {
  using namespace dw;

  nn::MlpConfig config;
  config.layer_sizes = {784, 200, 150, 100, 80, 40, 10};  // seven layers
  const nn::Mlp mlp(config);
  std::printf("network: 7 layers, %zu parameters, %zu neurons/example\n",
              mlp.num_params(), mlp.neurons_per_example());

  const nn::DigitData digits = nn::MakeMnistLike(/*n=*/1500, /*seed=*/5);

  nn::NnTrainOptions options;
  options.topology = numa::Local2();
  options.workers_per_node = 2;
  options.epochs = 5;
  options.learning_rate = 0.03;

  options.strategy = nn::NnStrategy::kClassic;
  const nn::NnTrainResult classic = nn::TrainParallel(mlp, digits, options);
  options.strategy = nn::NnStrategy::kDimmWitted;
  const nn::NnTrainResult dw = nn::TrainParallel(mlp, digits, options);

  std::puts("epoch   classic-loss   dimmwitted-loss");
  for (int e = 0; e < options.epochs; ++e) {
    std::printf("%5d   %.4f         %.4f\n", e, classic.loss_per_epoch[e],
                dw.loss_per_epoch[e]);
  }
  std::printf("\nthroughput (local2 model): classic %.2f M neurons/s, "
              "DimmWitted %.2f M neurons/s (%.1fx)\n",
              classic.SimNeuronsPerSec() / 1e6, dw.SimNeuronsPerSec() / 1e6,
              dw.SimNeuronsPerSec() / classic.SimNeuronsPerSec());
  return 0;
}
