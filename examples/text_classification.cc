// Text classification end to end: generate a corpus, persist it in LIBSVM
// format, reload it, then train logistic regression under three different
// execution plans to see the tradeoff space for yourself.
//
// Build & run:  ./examples/text_classification
#include <cstdio>

#include "data/paper_datasets.h"
#include "engine/engine.h"
#include "matrix/io.h"
#include "models/glm.h"

int main() {
  using namespace dw;

  // Generate a Reuters-shaped corpus and round-trip it through LIBSVM
  // (the same path your own exported data would take).
  data::Dataset corpus = data::Reuters(0.25);
  const std::string path = "/tmp/dw_example_corpus.libsvm";
  matrix::LabeledData on_disk{std::move(corpus.a), std::move(corpus.b)};
  if (Status st = matrix::WriteLibsvm(path, on_disk); !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto loaded = matrix::ReadLibsvm(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset;
  dataset.name = "reuters-libsvm";
  dataset.a = std::move(loaded.value().a);
  dataset.b = std::move(loaded.value().b);
  std::printf("loaded %u docs x %u terms from %s\n", dataset.a.rows(),
              dataset.a.cols(), path.c_str());

  models::LogisticSpec lr;
  struct PlanUnderTest {
    const char* label;
    engine::AccessMethod access;
    engine::ModelReplication mrep;
  };
  const PlanUnderTest plans[] = {
      {"Hogwild!-style  (row, PerMachine)", engine::AccessMethod::kRowWise,
       engine::ModelReplication::kPerMachine},
      {"shared-nothing  (row, PerCore)   ", engine::AccessMethod::kRowWise,
       engine::ModelReplication::kPerCore},
      {"DimmWitted      (row, PerNode)   ", engine::AccessMethod::kRowWise,
       engine::ModelReplication::kPerNode},
  };
  for (const PlanUnderTest& p : plans) {
    engine::EngineOptions options;
    options.topology = numa::Local2();
    options.access = p.access;
    options.model_rep = p.mrep;
    options.step_size = 0.1;
    engine::Engine engine(&dataset, &lr, options);
    if (Status st = engine.Init(); !st.ok()) {
      std::fprintf(stderr, "Init failed: %s\n", st.ToString().c_str());
      return 1;
    }
    engine::RunConfig cfg;
    cfg.max_epochs = 15;
    const engine::RunResult rr = engine.Run(cfg);
    std::printf("%s  final loss %.4f  sim %.2f ms/epoch\n", p.label,
                rr.epochs.back().loss,
                1e3 * rr.TotalSimSec() / rr.epochs.size());
  }
  std::remove(path.c_str());
  return 0;
}
