// Gibbs sampling over a factor graph (the paper's Sec. 5.1 extension):
// exact-vs-sampled marginals on a small chain, then NUMA-aware throughput
// on a Paleo-shaped graph comparing the Hogwild! chain with DimmWitted's
// one-chain-per-node strategy.
//
// Build & run:  ./examples/gibbs_inference
#include <cstdio>

#include "factor/factor_graph.h"
#include "factor/gibbs.h"

int main() {
  using namespace dw;

  // ---- correctness on a small chain ---------------------------------------
  const factor::FactorGraph chain =
      factor::MakeChainIsing(/*n=*/10, /*coupling=*/0.8, /*field=*/0.3);
  const std::vector<double> exact = factor::ExactMarginals(chain);

  factor::GibbsOptions options;
  options.strategy = factor::GibbsStrategy::kPerNode;
  options.topology = numa::Local2();
  options.sweeps = 3000;
  options.burn_in = 300;
  const factor::GibbsResult result = factor::RunGibbs(chain, options);

  std::puts("var   exact P(x=1)   sampled P(x=1)");
  for (factor::VarId v = 0; v < chain.num_vars(); ++v) {
    std::printf("%3u   %.4f         %.4f\n", v, exact[v],
                result.marginals[v]);
  }

  // ---- throughput on a Paleo-shaped graph ---------------------------------
  const factor::FactorGraph paleo = factor::MakePaleoLike(2e-4, 7);
  std::printf("\nPaleo-like graph: %u variables, %u factors, %lld edges\n",
              paleo.num_vars(), paleo.num_factors(),
              static_cast<long long>(paleo.num_edges()));
  factor::GibbsOptions perf;
  perf.topology = numa::Local4();
  perf.sweeps = 6;
  perf.burn_in = 2;

  perf.strategy = factor::GibbsStrategy::kPerMachine;
  const factor::GibbsResult hogwild = factor::RunGibbs(paleo, perf);
  perf.strategy = factor::GibbsStrategy::kPerNode;
  const factor::GibbsResult pernode = factor::RunGibbs(paleo, perf);

  std::printf("Hogwild! chain:  %.2f M samples/s (local4 model)\n",
              hogwild.SimSamplesPerSec() / 1e6);
  std::printf("PerNode chains:  %.2f M samples/s (local4 model), %.1fx\n",
              pernode.SimSamplesPerSec() / 1e6,
              pernode.SimSamplesPerSec() / hogwild.SimSamplesPerSec());
  return 0;
}
