// Network analysis on a social-network-shaped graph (the paper's LP/QP
// workloads): approximate minimum vertex cover via the LP relaxation, and
// label propagation via the QP -- both solved with column access under
// the optimizer-recommended PerMachine plan.
//
// Build & run:  ./examples/network_analysis
#include <cstdio>

#include "data/graphs.h"
#include "engine/engine.h"
#include "models/graph_opt.h"
#include "opt/optimizer.h"

int main() {
  using namespace dw;

  const auto graph = data::MakePowerLawGraph(/*num_vertices=*/4000,
                                             /*num_edges=*/16000,
                                             /*zipf_s=*/1.2, /*seed=*/42);
  std::printf("graph: %u vertices, %zu edges\n", graph.num_vertices,
              graph.edges.size());

  // ---- vertex cover LP ----------------------------------------------------
  {
    const data::Dataset lp_data =
        data::MakeVertexCoverLp(graph, 43, "example-graph");
    models::LpSpec lp;
    engine::EngineOptions options;
    options.topology = numa::Local2();
    options.step_size = 0.05;
    const opt::PlanChoice plan =
        opt::ChoosePlan(lp_data, lp, options.topology);
    opt::ApplyChoice(plan, &options);
    std::printf("LP plan: %s\n", plan.rationale.c_str());

    engine::Engine engine(&lp_data, &lp, options);
    DW_CHECK(engine.Init().ok());
    engine::RunConfig cfg;
    cfg.max_epochs = 25;
    const engine::RunResult rr = engine.Run(cfg);
    const std::vector<double> x = engine.ConsensusModel();
    // Round the LP relaxation: vertices with x >= 0.5 join the cover.
    int cover = 0;
    for (double v : x) cover += v >= 0.5;
    int uncovered = 0;
    for (const auto& [u, v] : graph.edges) {
      uncovered += !(x[u] >= 0.5 || x[v] >= 0.5);
    }
    std::printf("LP objective %.4f -> rounded cover %d vertices, "
                "%d/%zu edges uncovered\n",
                rr.epochs.back().loss, cover, uncovered, graph.edges.size());
  }

  // ---- label propagation QP ----------------------------------------------
  {
    const data::Dataset qp_data = data::MakeLabelPropagationQp(
        graph, /*lambda=*/1.0, /*seed_fraction=*/0.1, 44, "example-graph");
    models::QpSpec qp;
    engine::EngineOptions options;
    options.topology = numa::Local2();
    options.access = engine::AccessMethod::kColWise;
    options.model_rep = engine::ModelReplication::kPerMachine;
    engine::Engine engine(&qp_data, &qp, options);
    DW_CHECK(engine.Init().ok());
    engine::RunConfig cfg;
    cfg.max_epochs = 20;
    const engine::RunResult rr = engine.Run(cfg);
    const std::vector<double> x = engine.ConsensusModel();
    int labeled_pos = 0, labeled_neg = 0, seeds = 0;
    for (matrix::Index v = 0; v < qp_data.a.cols(); ++v) {
      seeds += qp_data.c[v] != 0.0;
      if (x[v] > 0.05) ++labeled_pos;
      if (x[v] < -0.05) ++labeled_neg;
    }
    std::printf("QP objective %.4f: %d seed labels propagated to "
                "%d positive / %d negative vertices\n",
                rr.epochs.back().loss, seeds, labeled_pos, labeled_neg);
  }
  return 0;
}
