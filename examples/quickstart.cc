// Quickstart: train an SVM with DimmWitted in ~40 lines.
//
//   1. build (or load) a dataset,
//   2. pick a model specification,
//   3. let the optimizer choose a plan for your machine,
//   4. run epochs and watch the loss.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "data/paper_datasets.h"
#include "engine/engine.h"
#include "models/glm.h"
#include "opt/optimizer.h"

int main() {
  using namespace dw;

  // 1. An RCV1-shaped text classification corpus (see data/paper_datasets.h;
  //    use matrix::ReadLibsvm to load your own data instead).
  const data::Dataset dataset = data::Rcv1(/*scale=*/0.003);
  std::printf("dataset: %s, %u examples, %u features, %lld nonzeros\n",
              dataset.name.c_str(), dataset.a.rows(), dataset.a.cols(),
              static_cast<long long>(dataset.a.nnz()));

  // 2. The model: a hinge-loss SVM. (LogisticSpec, LeastSquaresSpec,
  //    LpSpec, QpSpec are drop-in replacements.)
  models::SvmSpec svm;

  // 3. Ask the optimizer for a plan on a 2-socket machine.
  engine::EngineOptions options;
  options.topology = numa::Local2();
  options.step_size = 0.1;
  const opt::PlanChoice plan = opt::ChoosePlan(dataset, svm, options.topology);
  opt::ApplyChoice(plan, &options);
  std::printf("plan: %s\n", plan.rationale.c_str());

  // 4. Run.
  engine::Engine engine(&dataset, &svm, options);
  const Status st = engine.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "Init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  engine::RunConfig cfg;
  cfg.max_epochs = 20;
  const engine::RunResult result = engine.Run(cfg);
  for (const auto& epoch : result.epochs) {
    std::printf("epoch %2d  loss %.4f  wall %.1f ms  sim(local2) %.2f ms\n",
                epoch.epoch, epoch.loss, epoch.wall_sec * 1e3,
                epoch.sim_sec * 1e3);
  }
  std::printf("best loss: %.4f\n", result.BestLoss());
  return 0;
}
