// Figure 3: the machine table (nodes, cores/node, RAM, clock, LLC) plus
// STREAM-measured memory bandwidth. Prints the five virtual topologies
// with their calibrated memory-model constants, then probes the *actual*
// host with the four STREAM kernels (the paper measured local2 the same
// way, citing Bergstrom [9]).
#include "bench/bench_common.h"
#include "numa/bandwidth_probe.h"
#include "util/thread_util.h"

int main() {
  using namespace dw;

  Table machines("Figure 3: machines (virtual topologies + cost-model constants)");
  machines.SetHeader({"Name", "abbrv", "#Node", "#Cores/Node", "RAM/Node(GB)",
                      "Clock(GHz)", "LLC(MB)", "alpha", "DRAM GB/s/node",
                      "QPI GB/s"});
  for (const numa::Topology& t : numa::PaperMachines()) {
    machines.AddRow({t.name, t.abbrev, std::to_string(t.num_nodes),
                     std::to_string(t.cores_per_node),
                     Table::Num(t.ram_per_node_gb, 0),
                     Table::Num(t.cpu_ghz, 1), Table::Num(t.llc_mb, 0),
                     Table::Num(t.alpha, 1),
                     Table::Num(t.dram_gbps_per_node, 0),
                     Table::Num(t.qpi_gbps, 1)});
  }
  machines.Print();

  const int max_threads = NumOnlineCpus();
  Table stream("STREAM bandwidth measured on this host (GB/s)");
  stream.SetHeader({"Threads", "Copy", "Scale", "Add", "Triad"});
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    const numa::BandwidthResult r =
        numa::MeasureBandwidth(threads, 1 << 22, 3);
    stream.AddRow({std::to_string(threads), Table::Num(r.copy_gbps, 2),
                   Table::Num(r.scale_gbps, 2), Table::Num(r.add_gbps, 2),
                   Table::Num(r.triad_gbps, 2)});
  }
  stream.Print();

  std::puts("\nNote: the paper's Fig. 3 reports ~6 GB/s per worker to local"
            "\nRAM and ~11 GB/s over QPI on local2; the virtual topologies"
            "\ncarry those constants into the memory cost model.");
  return 0;
}
