// Appendix A ablations, measured for real on the host with
// google-benchmark kernels plus the engine's placement accounting:
//  (1) data/worker collocation: OS vs NUMA placement (sim epoch time);
//  (2) dense vs sparse storage kernels across sparsity;
//  (3) row-major vs column-major storage under row-wise access.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "matrix/dense_matrix.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

namespace {

// --- (3) row-major vs column-major matrix-vector multiply ----------------

matrix::DenseMatrix& TestMatrix(matrix::Layout layout) {
  static matrix::DenseMatrix row_major = [] {
    Rng rng(3);
    matrix::DenseMatrix m(2000, 512, matrix::Layout::kRowMajor);
    for (auto& v : m.data()) v = rng.Uniform();
    return m;
  }();
  static matrix::DenseMatrix col_major =
      row_major.WithLayout(matrix::Layout::kColMajor);
  return layout == matrix::Layout::kRowMajor ? row_major : col_major;
}

void BM_RowAccessRowMajor(benchmark::State& state) {
  const auto& m = TestMatrix(matrix::Layout::kRowMajor);
  std::vector<double> x(m.cols(), 1.0);
  for (auto _ : state) {
    double acc = 0.0;
    for (matrix::Index i = 0; i < m.rows(); ++i) {
      acc += m.Row(i).Dot(x.data());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * m.ScanBytes());
}

void BM_RowAccessColMajor(benchmark::State& state) {
  const auto& m = TestMatrix(matrix::Layout::kColMajor);
  std::vector<double> x(m.cols(), 1.0);
  for (auto _ : state) {
    double acc = 0.0;
    // Row-wise traversal of a column-major matrix: the strided pattern
    // whose L1 behaviour the paper measured at 9x more misses.
    for (matrix::Index i = 0; i < m.rows(); ++i) {
      double dot = 0.0;
      for (matrix::Index j = 0; j < m.cols(); ++j) {
        dot += m.At(i, j) * x[j];
      }
      acc += dot;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * m.ScanBytes());
}

// --- (2) dense vs sparse kernels over the SAME logical matrix -------------

// Times one full row-access sweep (seconds) of both storage formats for a
// matrix of the given density; the ratio is the paper's Dense-vs-Sparse
// tradeoff (Appendix A: Dense up to 2x faster at density 1.0, Sparse up
// to 4x faster at density 0.01).
void MeasureDenseVsSparse(double density, double* dense_sec,
                          double* sparse_sec) {
  constexpr matrix::Index kRows = 2000;
  constexpr matrix::Index kCols = 512;
  Rng rng(11);
  std::vector<matrix::Triplet> trips;
  for (matrix::Index i = 0; i < kRows; ++i) {
    for (matrix::Index j = 0; j < kCols; ++j) {
      if (rng.Bernoulli(density)) trips.push_back({i, j, rng.Uniform()});
    }
  }
  auto csr_or = matrix::CsrMatrix::FromTriplets(kRows, kCols, trips);
  DW_CHECK(csr_or.ok());
  const matrix::CsrMatrix csr = std::move(csr_or).value();
  matrix::DenseMatrix dense(kRows, kCols, matrix::Layout::kRowMajor);
  for (const auto& t : trips) dense.At(t.row, t.col) = t.value;

  // Best-of-N timing: the host is shared, so means are noisy.
  std::vector<double> x(kCols, 1.0);
  const int reps = 30;
  double acc = 0.0;
  *dense_sec = 1e30;
  *sparse_sec = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer td;
    for (matrix::Index i = 0; i < kRows; ++i) {
      acc += dense.Row(i).Dot(x.data());
    }
    *dense_sec = std::min(*dense_sec, td.Seconds());
    WallTimer ts;
    for (matrix::Index i = 0; i < kRows; ++i) {
      acc += csr.Row(i).Dot(x.data());
    }
    *sparse_sec = std::min(*sparse_sec, ts.Seconds());
  }
  benchmark::DoNotOptimize(acc);
}

}  // namespace

BENCHMARK(BM_RowAccessRowMajor);
BENCHMARK(BM_RowAccessColMajor);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // --- (2) dense vs sparse storage across density --------------------------
  Table ds("Appendix A: dense vs sparse kernels (same logical matrix,"
           " row access, host measurement)");
  ds.SetHeader({"density", "dense s/sweep", "sparse s/sweep", "winner"});
  for (double density : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    double dense_sec = 0.0, sparse_sec = 0.0;
    MeasureDenseVsSparse(density, &dense_sec, &sparse_sec);
    ds.AddRow({Table::Num(density, 2), Table::Num(dense_sec, 6),
               Table::Num(sparse_sec, 6),
               dense_sec < sparse_sec
                   ? "Dense " + bench::Ratio(sparse_sec, dense_sec)
                   : "Sparse " + bench::Ratio(dense_sec, sparse_sec)});
  }
  ds.Print();

  // --- (1) OS vs NUMA placement -------------------------------------------
  const data::Dataset rcv1 = bench::BenchRcv1();
  models::SvmSpec svm;
  Table t("Appendix A: data/worker collocation (SVM RCV1, PerNode,"
          " memory model)");
  t.SetHeader({"Machine", "OS placement s/epoch", "NUMA placement s/epoch",
               "speedup"});
  for (const numa::Topology& topo : {numa::Local2(), numa::Local4()}) {
    double per_epoch[2] = {0, 0};
    int k = 0;
    for (bool collocate : {false, true}) {
      engine::EngineOptions o =
          MakeOptions(topo, AccessMethod::kRowWise,
                      ModelReplication::kPerNode, DataReplication::kSharding);
      o.collocate_data = collocate;
      const engine::RunResult rr = bench::RunEngine(rcv1, svm, o, 2);
      per_epoch[k++] = rr.TotalSimSec() / rr.epochs.size();
    }
    t.AddRow({topo.name, Table::Num(per_epoch[0], 6),
              Table::Num(per_epoch[1], 6),
              bench::Ratio(per_epoch[0], per_epoch[1])});
  }
  t.Print();
  std::puts("\nShape check vs paper (Appendix A): NUMA placement beats OS"
            "\nplacement (paper: up to 2x); row-major beats column-major"
            "\nunder row access; sparse kernels win at low density, dense"
            "\nkernels at high density.");
  return 0;
}
