// Figure 22 (appendix C.4): importance sampling as a data-replication
// strategy -- LS on Music, comparing Sharding, FullReplication, and
// leverage-score Importance sampling at two error tolerances. The paper's
// finding: a loose tolerance (few samples per epoch) reaches moderate
// losses faster than FullReplication; a tight tolerance draws as many
// samples as the full data and loses its edge.
#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

int main() {
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 60);
  const data::Dataset music = bench::BenchMusic();
  models::LeastSquaresSpec ls;
  const double opt_loss = bench::OptimalLoss(music, ls, 200, 0.005);

  struct Strategy {
    std::string label;
    DataReplication drep;
    double eps;  // importance tolerance; 0 = unused
  };
  // Tolerances chosen so the loose one samples ~10% of the rows per epoch
  // and the tight one saturates at the full dataset (the same regimes as
  // the paper's Importance0.1 / Importance0.01 on the full-size Music).
  const double n = music.a.rows();
  const double d = music.a.cols();
  const double loose_eps = std::sqrt(2.0 * d * std::log(d) / (0.1 * n));
  const double tight_eps = std::sqrt(2.0 * d * std::log(d) / (1.5 * n));
  const std::vector<Strategy> strategies = {
      {"Sharding", DataReplication::kSharding, 0},
      {"FullReplication", DataReplication::kFullReplication, 0},
      {"Importance(loose)", DataReplication::kImportance, loose_eps},
      {"Importance(tight)", DataReplication::kImportance, tight_eps},
  };

  Table t("Figure 22: time to loss, LS (Music), local2");
  t.SetHeader({"Strategy", "rows/epoch/worker", "sim s to 50%",
               "sim s to 10%", "sim s to 1%"});
  for (const Strategy& s : strategies) {
    engine::EngineOptions o =
        MakeOptions(numa::Local2(), AccessMethod::kRowWise,
                    ModelReplication::kPerNode, s.drep, 0.005);
    o.importance_epsilon = s.eps > 0 ? s.eps : 0.1;
    engine::Engine eng(&music, &ls, o);
    DW_CHECK(eng.Init().ok());
    engine::RunConfig cfg;
    cfg.max_epochs = max_epochs;
    const engine::RunResult rr = eng.Run(cfg);
    const size_t per_worker = eng.plan().workers.front().work.size();
    auto cell = [&](double pct) {
      const double v = rr.SimSecToLoss(bench::Target(opt_loss, pct));
      return std::isinf(v) ? std::string("timeout") : Table::Num(v, 5);
    };
    t.AddRow({s.label, std::to_string(per_worker), cell(50), cell(10),
              cell(1)});
  }
  t.Print();
  std::puts("\nShape check vs paper: loose-tolerance importance sampling"
            "\nprocesses ~10% of the tuples per epoch and reaches moderate"
            "\nlosses fastest; the tight tolerance degenerates to"
            "\nFullReplication-like behaviour.");
  return 0;
}
