// Sec. 3.2's installation-time microbenchmark: the write/read cost ratio
// alpha. Measures the contended-write vs streaming-read cost on the real
// host (google-benchmark timing), prints the calibrated alpha of each
// virtual topology, and shows the robustness claim: the access-method
// decision is unchanged for any alpha in [4, 100].
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "numa/bandwidth_probe.h"
#include "opt/cost_model.h"
#include "util/thread_util.h"

using namespace dw;

namespace {

void BM_WriteReadRatio(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  double ratio = 0.0;
  for (auto _ : state) {
    ratio = numa::MeasureWriteReadCostRatio(threads, 1);
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["alpha"] = ratio;
}

}  // namespace

BENCHMARK(BM_WriteReadRatio)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  Table host("Host-measured write/read cost ratio (contended RMW vs"
             " streaming read)");
  host.SetHeader({"Threads", "alpha"});
  for (int threads = 1; threads <= NumOnlineCpus(); ++threads) {
    host.AddRow({std::to_string(threads),
                 Table::Num(opt::MeasureAlphaOnHost(threads), 2)});
  }
  host.Print();

  Table calib("Calibrated alpha per topology (paper Sec. 3.2: 4..12,"
              " growing with sockets)");
  calib.SetHeader({"Machine", "Sockets", "alpha"});
  for (const numa::Topology& t : numa::PaperMachines()) {
    calib.AddRow({t.name, std::to_string(t.num_nodes),
                  Table::Num(opt::AlphaForTopology(t), 1)});
  }
  calib.Print();

  // Robustness: the choice between row and column access is stable for
  // alpha anywhere in [4, 100] (paper Sec. 3.2).
  models::SvmSpec svm;
  models::LpSpec lp;
  const data::Dataset rcv1 = bench::BenchRcv1();
  const data::Dataset amazon = bench::BenchAmazonLp();
  Table rob("Decision robustness across alpha");
  rob.SetHeader({"alpha", "SVM (RCV1)", "LP (Amazon)"});
  for (double alpha : {4.0, 8.0, 12.0, 25.0, 50.0, 100.0}) {
    rob.AddRow({Table::Num(alpha, 0),
                ToString(opt::ChooseAccessMethod(rcv1.Stats(), svm, alpha)),
                ToString(opt::ChooseAccessMethod(amazon.Stats(), lp, alpha))});
  }
  rob.Print();
  return 0;
}
