// Figure 14: the plans DimmWitted's optimizer chooses on local2 for every
// model/dataset pair, regenerated from the cost model + rules of thumb.
#include "bench/bench_common.h"

int main() {
  using namespace dw;

  models::SvmSpec svm;
  models::LogisticSpec lr;
  models::LeastSquaresSpec ls;
  models::LpSpec lp;
  models::QpSpec qp;

  struct Row {
    const models::ModelSpec* spec;
    data::Dataset dataset;
  };
  const std::vector<Row> rows = {
      {&svm, bench::BenchReuters()}, {&svm, bench::BenchRcv1()},
      {&svm, data::WithBinaryLabels(bench::BenchMusic())},
      {&lr, bench::BenchReuters()},  {&lr, bench::BenchRcv1()},
      {&ls, bench::BenchMusic()},
      {&lp, bench::BenchAmazonLp()}, {&lp, bench::BenchGoogleLp()},
      {&qp, bench::BenchAmazonQp()}, {&qp, bench::BenchGoogleQp()},
  };

  Table t("Figure 14: plans chosen by the optimizer (local2)");
  t.SetHeader({"Model", "Dataset", "Access Method", "Model Replication",
               "Data Replication", "row cost", "col cost"});
  for (const Row& row : rows) {
    const opt::PlanChoice c =
        opt::ChoosePlan(row.dataset, *row.spec, numa::Local2());
    t.AddRow({row.spec->name(), row.dataset.name, ToString(c.access),
              ToString(c.model_rep), ToString(c.data_rep),
              Table::Num(c.row_cost, 0), Table::Num(c.col_cost, 0)});
  }
  t.Print();
  std::puts("\nPaper's Fig. 14: SVM/LR/LS -> Row-wise + PerNode +"
            "\nFullReplication; LP/QP -> Column + PerMachine +"
            "\nFullReplication. The table above must match.");
  return 0;
}
