// Figure 8: the model-replication tradeoff on SVM (RCV1).
//  (a) Statistical efficiency: epochs to reach {100, 50, 10, 1}% of the
//      optimal loss under PerCore / PerNode / PerMachine, with the
//      paper's per-strategy step-size grid search (Sec. 4.2 protocol).
//  (b) Hardware efficiency: time per epoch of the three strategies
//      (simulated on local2, wall-clock on the host).
// Plus the Sec. 4.2 PMU story (cross-node DRAM requests, PerMachine vs
// PerNode) and the Sec. 3.3 ablation: how the async averaging period
// affects convergence (the "communicate as frequently as possible" rule).
#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

int main() {
  const numa::Topology topo = numa::Local2();
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 100);
  const data::Dataset rcv1 = bench::BenchRcv1();
  models::SvmSpec svm;
  const double opt_loss = bench::OptimalLoss(rcv1, svm, 200, 0.03);

  const ModelReplication strategies[] = {ModelReplication::kPerCore,
                                         ModelReplication::kPerNode,
                                         ModelReplication::kPerMachine};

  Table a("Figure 8(a): epochs to converge, SVM (RCV1), step grid-searched"
          " per strategy");
  a.SetHeader({"Strategy", "100%", "50%", "10%", "1%"});
  for (ModelReplication mrep : strategies) {
    const engine::RunResult rr = bench::RunBestStep(
        rcv1, svm,
        MakeOptions(topo, AccessMethod::kRowWise, mrep,
                    DataReplication::kSharding),
        max_epochs, opt_loss);
    auto cell = [&](double pct) {
      const int e = rr.EpochsToLoss(bench::Target(opt_loss, pct));
      return e < 0 ? std::string("timeout") : std::to_string(e);
    };
    a.AddRow({ToString(mrep), cell(100), cell(50), cell(10), cell(1)});
  }
  a.Print();

  // (b) Hardware efficiency + PMU counters: step-independent, so one
  // short run per strategy suffices.
  Table b("Figure 8(b): time per epoch, SVM (RCV1)");
  b.SetHeader({"Strategy", "sim s/epoch (local2)", "wall s/epoch (host)",
               "cross-node DRAM req/epoch"});
  uint64_t remote_reqs[3] = {0, 0, 0};
  double sim_epoch[3] = {0, 0, 0};
  int idx = 0;
  for (ModelReplication mrep : strategies) {
    engine::Engine eng(&rcv1, &svm,
                       MakeOptions(topo, AccessMethod::kRowWise, mrep,
                                   DataReplication::kSharding, 0.03));
    DW_CHECK(eng.Init().ok());
    engine::RunConfig cfg;
    cfg.max_epochs = 4;
    const engine::RunResult rr = eng.Run(cfg);
    const auto total = eng.last_epoch_sim().traffic.Total();
    remote_reqs[idx] = total.remote_dram_requests();
    sim_epoch[idx] = rr.TotalSimSec() / rr.epochs.size();
    b.AddRow({ToString(mrep), Table::Num(sim_epoch[idx], 6),
              Table::Num(rr.TotalWallSec() / rr.epochs.size(), 4),
              std::to_string(remote_reqs[idx])});
    ++idx;
  }
  b.Print();

  std::printf("\nHeadline ratios: PerMachine/PerNode sim time per epoch ="
              " %.1fx (paper: ~23x);\nPerCore/PerNode = %.2fx (paper: "
              "PerCore ~1.5x FASTER per epoch).\n",
              sim_epoch[2] / sim_epoch[1], sim_epoch[0] / sim_epoch[1]);
  std::printf("PMU story (Sec. 4.2): PerNode cross-node DRAM requests = "
              "%llu/epoch, PerMachine = %llu/epoch.\n",
              static_cast<unsigned long long>(remote_reqs[1]),
              static_cast<unsigned long long>(remote_reqs[2]));

  // Ablation: model-synchronization frequency (Sec. 3.3). Period 0 means
  // epoch-boundary-only averaging.
  Table c("Ablation: async averaging period, PerNode SVM (RCV1),"
          " step = 0.03");
  c.SetHeader({"sync period (us)", "epochs to 50%", "best loss"});
  for (int period : {0, 50, 200, 1000, 10000}) {
    engine::EngineOptions o =
        MakeOptions(topo, AccessMethod::kRowWise, ModelReplication::kPerNode,
                    DataReplication::kSharding, 0.03);
    o.sync_interval_us = period;
    const engine::RunResult rr =
        bench::RunEngine(rcv1, svm, o, max_epochs / 2);
    const int e = rr.EpochsToLoss(bench::Target(opt_loss, 50.0));
    c.AddRow({std::to_string(period),
              e < 0 ? std::string("timeout") : std::to_string(e),
              Table::Num(rr.BestLoss(), 4)});
  }
  c.Print();
  return 0;
}
