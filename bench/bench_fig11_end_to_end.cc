// Figure 11: the end-to-end comparison. For each of the five systems
// (GraphLab-, GraphChi-, MLlib-style, Hogwild!, DimmWitted) and each task
// (SVM/LR/LS on Reuters/RCV1/Music/Forest; LP/QP on Amazon/Google), the
// wall-clock seconds to reach 50% and 1% of the optimal loss, with
// timeouts marked "> T" exactly as in the paper. Absolute numbers reflect
// this host; the claim being reproduced is the ORDERING (DW <= Hogwild! <
// MLlib << GraphLab/GraphChi for SGD models; DW < GraphLab/GraphChi <<
// row-wise systems for LP/QP).
#include <functional>

#include "bench/bench_common.h"

using namespace dw;
using baselines::BaselineOptions;
using engine::RunResult;

namespace {

struct Task {
  std::string label;
  data::Dataset dataset;
  const models::ModelSpec* spec;
  double step;
};

using Runner = std::function<RunResult(const data::Dataset&,
                                       const models::ModelSpec&,
                                       const BaselineOptions&)>;

}  // namespace

int main() {
  const double timeout = bench::EnvDouble("DW_BENCH_TIMEOUT", 20.0);
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 60);

  models::SvmSpec svm;
  models::LogisticSpec lr;
  models::LeastSquaresSpec ls;
  models::LpSpec lp;
  models::QpSpec qp;

  std::vector<Task> tasks;
  for (const auto* spec :
       {static_cast<const models::ModelSpec*>(&svm),
        static_cast<const models::ModelSpec*>(&lr),
        static_cast<const models::ModelSpec*>(&ls)}) {
    // Least-squares SGD needs steps below 2/||a_i||^2; text rows carry
    // ~12-77 nonzeros, so its grid sits an order of magnitude lower.
    const double text_step = spec->name() == "LS" ? 0.01 : 0.1;
    tasks.push_back({spec->name() + " Reuters", bench::BenchReuters(), spec,
                     text_step});
    tasks.push_back(
        {spec->name() + " RCV1", bench::BenchRcv1(), spec, text_step});
    tasks.push_back({spec->name() + " Music",
                     spec->name() == "LS"
                         ? bench::BenchMusic()
                         : data::WithBinaryLabels(bench::BenchMusic()),
                     spec, spec->name() == "LS" ? 0.005 : 0.02});
    tasks.push_back({spec->name() + " Forest", bench::BenchForest(), spec,
                     0.02});
  }
  tasks.push_back({"LP Amazon", bench::BenchAmazonLp(), &lp, 0.05});
  tasks.push_back({"LP Google", bench::BenchGoogleLp(), &lp, 0.05});
  tasks.push_back({"QP Amazon", bench::BenchAmazonQp(), &qp, 0.3});
  tasks.push_back({"QP Google", bench::BenchGoogleQp(), &qp, 0.3});

  const std::vector<std::pair<std::string, Runner>> systems = {
      {"GraphLab", baselines::RunGraphLabStyle},
      {"GraphChi", baselines::RunGraphChiStyle},
      {"MLlib", baselines::RunMLlibStyle},
      {"Hogwild!", baselines::RunHogwild},
      {"DW", baselines::RunDimmWitted},
  };

  Table t1("Figure 11: seconds to within 1% of optimal loss (host wall"
           " clock; '> T' = timeout)");
  Table t50("Figure 11: seconds to within 50% of optimal loss");
  t1.SetHeader({"Task", "GraphLab", "GraphChi", "MLlib", "Hogwild!", "DW"});
  t50.SetHeader({"Task", "GraphLab", "GraphChi", "MLlib", "Hogwild!", "DW"});

  for (const Task& task : tasks) {
    const double opt_loss = bench::OptimalLoss(
        task.dataset, *task.spec, 150, task.step);
    const double tgt1 = bench::Target(opt_loss, 1.0);
    const double tgt50 = bench::Target(opt_loss, 50.0);
    std::vector<std::string> row1{task.label}, row50{task.label};
    for (const auto& [name, runner] : systems) {
      // Paper protocol: grid-search the step size per system and report
      // the best configuration.
      double best1 = std::numeric_limits<double>::infinity();
      double best50 = std::numeric_limits<double>::infinity();
      for (double step : {3.0 * task.step, task.step, task.step / 3.0}) {
        BaselineOptions o;
        o.topology = numa::Local2();
        // Wall-clock fidelity on this host: one worker per virtual node
        // (no CPU oversubscription). The virtual-topology sweeps that
        // need all 12 workers use simulated time instead (Figs. 8-16).
        o.workers_per_node = 1;
        o.max_epochs = max_epochs;
        o.step_size = step;
        o.stop_loss = tgt1;
        o.wall_timeout_sec = timeout;
        const RunResult rr = runner(task.dataset, *task.spec, o);
        best1 = std::min(best1, rr.WallSecToLoss(tgt1));
        best50 = std::min(best50, rr.WallSecToLoss(tgt50));
      }
      row1.push_back(Table::TimeOr(best1, timeout));
      row50.push_back(Table::TimeOr(best50, timeout));
    }
    t1.AddRow(row1);
    t50.AddRow(row50);
  }
  t1.Print();
  t50.Print();
  std::puts("\nShape check vs paper: DW at least ties the best competitor on"
            "\nevery task; row-wise systems (Hogwild!/MLlib) lag on LP/QP,"
            "\ncolumn-wise systems (GraphLab/GraphChi) lag on SVM/LR/LS.");
  return 0;
}
