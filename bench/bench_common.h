// Shared support for the per-figure bench binaries. Every bench prints the
// paper's rows/series through dw::Table and reports both host wall-clock
// measurements and memory-model (simulated) times for the named topology,
// per the substitution documented in DESIGN.md.
#pragma once

#include <cstdlib>
#include <map>
#include <string>

#include "baselines/baselines.h"
#include "data/paper_datasets.h"
#include "engine/engine.h"
#include "engine/grid_search.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "opt/optimizer.h"
#include "util/table.h"

namespace dw::bench {

/// Reads a double knob from the environment (e.g. DW_BENCH_SCALE).
inline double EnvDouble(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : dflt;
}

/// Reads an integer knob from the environment.
inline int EnvInt(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : dflt;
}

/// Global dataset scale multiplier (1.0 = the bench defaults; raise to
/// stress the machine, lower for smoke runs).
inline double BenchScale() { return EnvDouble("DW_BENCH_SCALE", 1.0); }

/// Bench-default dataset constructors (paper shapes at CI-friendly size).
inline data::Dataset BenchRcv1() { return data::Rcv1(0.004 * BenchScale()); }
inline data::Dataset BenchReuters() {
  return data::Reuters(0.25 * BenchScale());
}
inline data::Dataset BenchMusic() { return data::Music(0.01 * BenchScale()); }
inline data::Dataset BenchForest() {
  return data::Forest(0.01 * BenchScale());
}
inline data::Dataset BenchAmazonLp() {
  return data::AmazonLp(0.01 * BenchScale());
}
inline data::Dataset BenchGoogleLp() {
  return data::GoogleLp(0.005 * BenchScale());
}
inline data::Dataset BenchAmazonQp() {
  return data::AmazonQp(0.008 * BenchScale());
}
inline data::Dataset BenchGoogleQp() {
  return data::GoogleQp(0.004 * BenchScale());
}

/// Engine options preset for a paper topology.
inline engine::EngineOptions MakeOptions(const numa::Topology& topo,
                                         engine::AccessMethod access,
                                         engine::ModelReplication mrep,
                                         engine::DataReplication drep,
                                         double step = 0.1) {
  engine::EngineOptions o;
  o.topology = topo;
  o.access = access;
  o.model_rep = mrep;
  o.data_rep = drep;
  o.step_size = step;
  return o;
}

/// Runs an engine to completion and returns the loss curve.
inline engine::RunResult RunEngine(const data::Dataset& d,
                                   const models::ModelSpec& spec,
                                   const engine::EngineOptions& options,
                                   int max_epochs,
                                   double stop_loss = -1e300,
                                   double timeout_sec = 1e300) {
  engine::Engine eng(&d, &spec, options);
  const Status st = eng.Init();
  DW_CHECK(st.ok()) << st.ToString();
  engine::RunConfig cfg;
  cfg.max_epochs = max_epochs;
  cfg.stop_loss = stop_loss;
  cfg.wall_timeout_sec = timeout_sec;
  return eng.Run(cfg);
}

/// Reference "optimal loss" (paper Sec. 4.1: lowest loss over a long run),
/// cached per (spec, dataset) within the process. Runs both a row-wise
/// (SGD) and a column (coordinate-descent) reference and keeps the lower
/// loss: SGD is the robust reference for the nonsmooth GLMs, while exact
/// coordinate minimization is far stronger for LP/QP.
inline double OptimalLoss(const data::Dataset& d,
                          const models::ModelSpec& spec, int epochs = 120,
                          double step = 0.1) {
  static std::map<std::string, double> cache;
  const std::string key = spec.name() + "/" + d.name + "/" +
                          std::to_string(d.a.rows());
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  double opt = std::numeric_limits<double>::infinity();
  if (spec.HasRow()) {
    opt = std::min(opt, engine::ReferenceOptimalLoss(
                            d, spec, engine::AccessMethod::kRowWise, epochs,
                            step));
  }
  if (spec.HasCtr() || spec.HasCol()) {
    const engine::AccessMethod col = spec.HasCtr()
                                         ? engine::AccessMethod::kColToRow
                                         : engine::AccessMethod::kColWise;
    opt = std::min(opt,
                   engine::ReferenceOptimalLoss(d, spec, col, epochs, step));
  }
  cache[key] = opt;
  return opt;
}

/// The paper's loss thresholds ("within p% of the optimal loss").
inline double Target(double optimal, double percent) {
  return engine::RunResult::TargetLoss(optimal, percent / 100.0);
}

/// The paper's protocol (Sec. 4.2): "for each system, we grid search their
/// statistical parameters including step size ... we always report the
/// best configuration". Thin wrapper over engine::GridSearchStepSize.
inline engine::RunResult RunBestStep(
    const data::Dataset& d, const models::ModelSpec& spec,
    engine::EngineOptions options, int max_epochs, double optimal_loss,
    const std::vector<double>& steps = {0.3, 0.1, 0.03, 0.01}) {
  return engine::GridSearchStepSize(d, spec, std::move(options), max_epochs,
                                    optimal_loss, steps)
      .best_run;
}

/// Formats a ratio column like "3.2x".
inline std::string Ratio(double num, double denom) {
  if (denom <= 0.0) return "n/a";
  return Table::Num(num / denom, 2) + "x";
}

}  // namespace dw::bench
