// Microbench for the feature store's sharded key index and delta publish
// path (ISSUE: KV-grade feature store).
//
//   1. Load-factor sweep -- probe cost of LookupSlot hits and misses as
//      the open-addressing shards fill toward the 0.7 grow knee.
//   2. Delta publish vs churn -- wall time and bytes written per refresh
//      for churn fractions 0.1%..100%, against the full-rewrite baseline
//      (the tentpole claim: refresh cost scales with churn, not rows).
//   3. Eviction + tombstone reuse -- index health (live/tombstones/
//      capacity) and probe cost across churn rounds that overflow the
//      store and recycle graves.
//
// Knobs: DW_BENCH_ROWS (default 32768), DW_BENCH_LOOKUPS (default
// 1000000). No google-benchmark dependency; plain tables like the other
// paper benches.
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "numa/numa_allocator.h"
#include "numa/topology.h"
#include "serve/feature_store.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace dw::serve {
namespace {

using matrix::Index;

int EnvInt(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : dflt;
}

std::unique_ptr<FeatureStore> MakeStore(
    const std::shared_ptr<numa::NumaAllocator>& alloc, Index rows, Index dim,
    Index page_rows) {
  StoreOptions o;
  o.placement_override = StorePlacement::kSharded;
  o.page_rows = page_rows;
  return std::make_unique<FeatureStore>("bench", alloc, rows, dim, o);
}

/// Bootstraps `count` keys drawn from [base, base + count) in one delta.
void SeedKeys(FeatureStore& store, uint64_t base, size_t count, Index dim) {
  std::vector<uint64_t> keys(count);
  for (size_t i = 0; i < count; ++i) keys[i] = base + i;
  store.PublishDelta(keys, std::vector<double>(count * dim, 1.0));
}

/// ns/op over `lookups` random LookupSlot calls; keys drawn from
/// [base, base + span). `sink` defeats dead-code elimination.
double LookupNs(const FeatureStoreSnapshot& snap, uint64_t base,
                uint64_t span, int lookups, uint64_t* sink) {
  Rng rng(42);
  WallTimer timer;
  uint64_t found = 0;
  for (int i = 0; i < lookups; ++i) {
    const auto slot = snap.LookupSlot(base + rng.Below(span));
    found += slot.has_value() ? *slot + 1 : 0;
  }
  *sink += found;
  return timer.Seconds() * 1e9 / lookups;
}

void RunLoadFactorSweep(Index rows, int lookups) {
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  const Index dim = 8;
  Table t("key index: load-factor sweep");
  t.SetHeader({"fill", "live", "capacity", "load", "hit ns/op",
               "miss ns/op"});
  uint64_t sink = 0;
  for (const double fill : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    auto store = MakeStore(alloc, rows, dim, 256);
    const size_t live = static_cast<size_t>(fill * rows);
    SeedKeys(*store, 0, live, dim);
    const auto snap = store->Acquire();
    uint64_t capacity = 0;
    for (const auto& st : snap->IndexStats()) capacity += st.capacity;
    const double hit_ns = LookupNs(*snap, 0, live, lookups, &sink);
    // Misses probe the full chain (to an empty cell) -- the worst case.
    const double miss_ns =
        LookupNs(*snap, 1u << 30, rows, lookups, &sink);
    t.AddRow({Table::Num(fill, 2), std::to_string(snap->live_rows()),
              std::to_string(capacity),
              Table::Num(static_cast<double>(live) / capacity, 2),
              Table::Num(hit_ns, 1), Table::Num(miss_ns, 1)});
  }
  t.Print();
  std::printf("(sink %llu)\n\n", static_cast<unsigned long long>(sink));
}

void RunChurnSweep(Index rows) {
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  const Index dim = 16;
  Table t("delta publish: bytes + wall time vs churn");
  t.SetHeader({"churn", "keys", "delta MB", "full MB", "ratio",
               "publish ms"});
  for (const double churn : {0.001, 0.01, 0.1, 1.0}) {
    auto store = MakeStore(alloc, rows, dim, 64);
    SeedKeys(*store, 0, rows, dim);  // resident at capacity
    const size_t n = std::max<size_t>(1, static_cast<size_t>(churn * rows));
    // Overwrite a random resident subset: pure churn, no evictions.
    Rng rng(7);
    std::vector<uint64_t> keys;
    std::vector<bool> picked(rows, false);
    while (keys.size() < n) {
      const uint64_t k = rng.Below(rows);
      if (!picked[k]) {
        picked[k] = true;
        keys.push_back(k);
      }
    }
    const std::vector<double> block(n * dim, 2.0);
    WallTimer timer;
    const StorePublishReport rep = store->PublishDelta(keys, block);
    const double ms = timer.Seconds() * 1e3;
    t.AddRow({Table::Num(churn, 3), std::to_string(n),
              Table::Num(rep.delta_bytes / 1e6, 3),
              Table::Num(rep.full_bytes / 1e6, 3),
              Table::Num(static_cast<double>(rep.delta_bytes) /
                             rep.full_bytes,
                         4),
              Table::Num(ms, 3)});
  }
  t.Print();
  std::printf("\n");
}

void RunEvictionRounds(Index rows, int lookups) {
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  const Index dim = 8;
  auto store = MakeStore(alloc, rows, dim, 64);
  SeedKeys(*store, 0, rows, dim);
  Table t("eviction churn: tombstone reuse + probe cost");
  t.SetHeader({"round", "live", "tombstones", "capacity", "evicted",
               "hit ns/op"});
  uint64_t sink = 0;
  uint64_t fresh = 1u << 20;
  const size_t per_round = rows / 8;
  for (int round = 1; round <= 8; ++round) {
    // Fresh keys overflow the full store: the clock evicts pages, the
    // index tombstones the victims, and the next round's probes must
    // step over (and reuse) the graves.
    SeedKeys(*store, fresh, per_round, dim);
    fresh += per_round;
    const auto snap = store->Acquire();
    uint64_t live = 0, tombs = 0, capacity = 0;
    for (const auto& st : snap->IndexStats()) {
      live += st.live;
      tombs += st.tombstones;
      capacity += st.capacity;
    }
    const double hit_ns =
        LookupNs(*snap, fresh - per_round, per_round, lookups / 4, &sink);
    t.AddRow({std::to_string(round), std::to_string(live),
              std::to_string(tombs), std::to_string(capacity),
              std::to_string(store->evictions_total()),
              Table::Num(hit_ns, 1)});
  }
  t.Print();
  std::printf("(sink %llu)\n", static_cast<unsigned long long>(sink));
}

}  // namespace
}  // namespace dw::serve

int main() {
  const dw::matrix::Index rows = dw::serve::EnvInt("DW_BENCH_ROWS", 32768);
  const int lookups = dw::serve::EnvInt("DW_BENCH_LOOKUPS", 1000000);
  dw::serve::RunLoadFactorSweep(rows, lookups);
  dw::serve::RunChurnSweep(rows);
  dw::serve::RunEvictionRounds(rows, lookups);
  return 0;
}
