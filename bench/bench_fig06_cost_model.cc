// Figure 6: the per-epoch cost table of the optimizer -- reads and writes
// of each access method on each bench dataset, plus the derived decision.
// This regenerates the analytic table the paper's Sec. 3.2 builds its
// access-method selection on.
#include "bench/bench_common.h"
#include "opt/cost_model.h"

int main() {
  using namespace dw;
  using bench::BenchScale;
  using engine::AccessMethod;

  struct Row {
    data::Dataset dataset;
    const models::ModelSpec* spec;
  };
  models::SvmSpec svm;
  models::LpSpec lp;
  models::QpSpec qp;
  const std::vector<Row> rows = {
      {bench::BenchReuters(), &svm}, {bench::BenchRcv1(), &svm},
      {bench::BenchMusic(), &svm},   {bench::BenchForest(), &svm},
      {bench::BenchAmazonLp(), &lp}, {bench::BenchGoogleLp(), &lp},
      {bench::BenchAmazonQp(), &qp}, {bench::BenchGoogleQp(), &qp},
  };

  const double alpha = opt::AlphaForTopology(numa::Local2());
  Table t("Figure 6: per-epoch cost model (alpha = " + Table::Num(alpha, 1) +
          ", local2)");
  t.SetHeader({"Model", "Dataset", "sum n_i", "sum n_i^2", "d",
               "row reads", "row writes", "col reads", "col writes",
               "cost ratio", "chosen"});
  for (const Row& row : rows) {
    const matrix::MatrixStats s = row.dataset.Stats();
    const auto rc = opt::EstimateAccessCost(s, AccessMethod::kRowWise,
                                            row.spec->RowWriteSparsity(),
                                            false);
    const AccessMethod col_m = row.spec->HasCtr() ? AccessMethod::kColToRow
                                                  : AccessMethod::kColWise;
    const auto cc = opt::EstimateAccessCost(
        s, col_m, row.spec->RowWriteSparsity(),
        row.spec->ColumnStepMaintainsAux());
    const AccessMethod chosen =
        opt::ChooseAccessMethod(s, *row.spec, alpha);
    t.AddRow({row.spec->name(), row.dataset.name,
              std::to_string(s.sum_ni), std::to_string(s.sum_ni_sq),
              std::to_string(s.cols), Table::Num(rc.reads, 0),
              Table::Num(rc.writes, 0), Table::Num(cc.reads, 0),
              Table::Num(cc.writes, 0),
              Table::Num(opt::CostRatio(s, alpha), 3),
              engine::ToString(chosen)});
  }
  t.Print();
  return 0;
}
