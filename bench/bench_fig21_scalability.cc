// Figure 21 (appendix C.3): scalability on the ClueWeb-like workload --
// time per epoch at 1%, 10%, 50%, and 100% of the bench-scale dataset.
// The paper's finding: time per epoch grows linearly with the number of
// examples (the 100K-feature model stays LLC-resident).
#include "data/transforms.h"

#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

int main() {
  const double base_scale = bench::EnvDouble("DW_BENCH_CLUEWEB_SCALE", 4e-4);
  const data::Dataset full = data::ClueWeb(base_scale);
  models::LeastSquaresSpec ls;

  Table t("Figure 21: time per epoch vs scale (ClueWeb-like, LS, rule-of-"
          "thumb plan, local2)");
  t.SetHeader({"scale", "rows", "nnz", "sim s/epoch", "wall s/epoch",
               "sim ratio vs 1%"});
  double base_sim = 0.0;
  for (double frac : {0.01, 0.1, 0.5, 1.0}) {
    const data::Dataset d =
        frac < 1.0 ? data::SubsampleRows(full, frac, 31) : full;
    const engine::RunResult rr = bench::RunEngine(
        d, ls,
        MakeOptions(numa::Local2(), AccessMethod::kRowWise,
                    ModelReplication::kPerNode,
                    DataReplication::kFullReplication, 0.05),
        3);
    const double sim = rr.TotalSimSec() / rr.epochs.size();
    const double wall = rr.TotalWallSec() / rr.epochs.size();
    if (base_sim == 0.0) base_sim = sim;
    t.AddRow({Table::Num(frac, 2), std::to_string(d.a.rows()),
              std::to_string(d.a.nnz()), Table::Num(sim, 6),
              Table::Num(wall, 4), Table::Num(sim / base_sim, 1)});
  }
  t.Print();
  std::puts("\nShape check vs paper: epoch time grows ~linearly with the"
            "\nnumber of examples (ratios ~ 1 : 10 : 50 : 100).");
  return 0;
}
