// Figure 13: throughput (GB/s) of the five systems. Two parts:
//  - parallel sum under each system's execution model (the paper's
//    "extremely simple task"), using google-benchmark for the timing
//    loops;
//  - per-model data throughput (bytes of data matrix scanned per second)
//    for SVM/LR/LS on RCV1 and LP/QP on Google, per system.
#include <benchmark/benchmark.h>

#include "baselines/parallel_sum.h"
#include "bench/bench_common.h"
#include "util/rng.h"
#include "util/thread_util.h"

using namespace dw;
using baselines::BaselineOptions;
using baselines::SumStrategy;

namespace {

std::vector<double> MakeSumInput() {
  static std::vector<double> values;
  if (values.empty()) {
    const size_t n = static_cast<size_t>(
        bench::EnvDouble("DW_BENCH_SUM_ELEMS", 4e6));
    Rng rng(5);
    values.resize(n);
    for (auto& v : values) v = rng.Uniform();
  }
  return values;
}

void BM_ParallelSum(benchmark::State& state) {
  const auto strategy = static_cast<SumStrategy>(state.range(0));
  const auto& values = MakeSumInput();
  const int threads = std::max(2, NumOnlineCpus());
  double gbps = 0.0;
  for (auto _ : state) {
    const auto r = baselines::RunParallelSum(values, threads, strategy);
    benchmark::DoNotOptimize(r.sum);
    gbps = r.gb_per_sec;
  }
  state.counters["GB/s"] = gbps;
}

}  // namespace

BENCHMARK(BM_ParallelSum)
    ->Arg(static_cast<int>(SumStrategy::kDimmWitted))
    ->Arg(static_cast<int>(SumStrategy::kHogwild))
    ->Arg(static_cast<int>(SumStrategy::kGraphLabStyle))
    ->Arg(static_cast<int>(SumStrategy::kMLlibStyle))
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // ---- Parallel-sum table (paper's right-most column) ---------------------
  const auto& values = MakeSumInput();
  const int threads = std::max(2, NumOnlineCpus());
  Table sum_table("Figure 13 (parallel sum): GB/s by system style");
  sum_table.SetHeader({"System", "GB/s", "vs DW"});
  const std::pair<const char*, SumStrategy> styles[] = {
      {"DimmWitted", SumStrategy::kDimmWitted},
      {"Hogwild!", SumStrategy::kHogwild},
      {"GraphLab/GraphChi", SumStrategy::kGraphLabStyle},
      {"MLlib", SumStrategy::kMLlibStyle},
  };
  double dw_gbps = 0.0;
  for (const auto& [name, strategy] : styles) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best,
                      baselines::RunParallelSum(values, threads, strategy)
                          .gb_per_sec);
    }
    if (strategy == SumStrategy::kDimmWitted) dw_gbps = best;
    sum_table.AddRow({name, Table::Num(best, 2),
                      dw_gbps > 0 ? Table::Num(best / dw_gbps, 2) : "1.00"});
  }
  sum_table.Print();

  // ---- Per-model throughput (GB/s of data scanned) -----------------------
  Table t("Figure 13 (models): data GB/s per system (host measurement)");
  t.SetHeader({"System", "SVM(RCV1)", "LR(RCV1)", "LS(RCV1)", "LP(Google)",
               "QP(Google)"});

  models::SvmSpec svm;
  models::LogisticSpec lr;
  models::LeastSquaresSpec ls;
  models::LpSpec lp;
  models::QpSpec qp;
  const data::Dataset rcv1 = bench::BenchRcv1();
  const data::Dataset google_lp = bench::BenchGoogleLp();
  const data::Dataset google_qp = bench::BenchGoogleQp();

  struct Cell {
    const data::Dataset* d;
    const models::ModelSpec* spec;
  };
  const Cell cells[] = {{&rcv1, &svm},
                        {&rcv1, &lr},
                        {&rcv1, &ls},
                        {&google_lp, &lp},
                        {&google_qp, &qp}};

  using Runner = engine::RunResult (*)(const data::Dataset&,
                                       const models::ModelSpec&,
                                       const BaselineOptions&);
  const std::pair<const char*, Runner> systems[] = {
      {"GraphLab", &baselines::RunGraphLabStyle},
      {"GraphChi", &baselines::RunGraphChiStyle},
      {"MLlib", &baselines::RunMLlibStyle},
      {"Hogwild!", &baselines::RunHogwild},
      {"DimmWitted", &baselines::RunDimmWitted},
  };
  const int epochs = bench::EnvInt("DW_BENCH_EPOCHS", 3);
  for (const auto& [name, runner] : systems) {
    std::vector<std::string> row{name};
    for (const Cell& cell : cells) {
      BaselineOptions o;
      o.topology = numa::Local2();
      o.max_epochs = epochs;
      o.step_size = 0.05;
      const engine::RunResult rr = runner(*cell.d, *cell.spec, o);
      // Bytes actually processed: engine runs report exact traffic (e.g.
      // FullReplication sweeps the data once per node); baselines without
      // counters default to one scan per epoch.
      double bytes = 0.0;
      for (const auto& rec : rr.epochs) {
        const uint64_t counted = rec.traffic.total_read_bytes();
        bytes += counted > 0 ? static_cast<double>(counted)
                             : static_cast<double>(cell.d->a.ScanBytes());
      }
      row.push_back(Table::Num(bytes / rr.TotalWallSec() / 1e9, 3));
    }
    t.AddRow(row);
  }
  t.Print();
  std::puts("\nShape check vs paper: DimmWitted posts the highest throughput"
            "\ncolumn-wide; Hogwild! trails it; bulk-synchronous and"
            "\nqueue-scheduled systems trail further.");
  return 0;
}
