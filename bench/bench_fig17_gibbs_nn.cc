// Figure 17:
//  (a) the data-replication ratio curve -- FullReplication/Sharding
//      execution time to reach each error level, SVM (RCV1): below 1
//      (FullReplication faster) at tight errors, above 1 at loose ones.
//  (b) the extensions -- Gibbs sampling and the deep neural network:
//      throughput (million variables/second) of the classic strategy
//      choice vs DimmWitted's (PerNode-based) choice.
#include "bench/bench_common.h"
#include "factor/gibbs.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

int main() {
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 100);

  // ---- (a) FullReplication / Sharding time ratio vs error ----------------
  const data::Dataset reuters = bench::BenchReuters();
  models::SvmSpec svm;
  const double opt_loss = bench::OptimalLoss(reuters, svm, 250);

  Table a("Figure 17(a): FullReplication/Sharding sim time to loss,"
          " SVM (Reuters), PerNode, local2");
  a.SetHeader({"error", "Sharding s", "FullRepl s", "ratio (FR/Sh)"});
  const auto shard = bench::RunBestStep(
      reuters, svm,
      MakeOptions(numa::Local2(), AccessMethod::kRowWise,
                  ModelReplication::kPerNode, DataReplication::kSharding),
      max_epochs, opt_loss);
  const auto full = bench::RunBestStep(
      reuters, svm,
      MakeOptions(numa::Local2(), AccessMethod::kRowWise,
                  ModelReplication::kPerNode,
                  DataReplication::kFullReplication),
      max_epochs, opt_loss);
  for (double pct : {0.5, 1.0, 10.0, 50.0, 100.0}) {
    const double tgt = bench::Target(opt_loss, pct);
    const double ts = shard.SimSecToLoss(tgt);
    const double tf = full.SimSecToLoss(tgt);
    a.AddRow({Table::Num(pct, 1) + "%",
              std::isinf(ts) ? "timeout" : Table::Num(ts, 5),
              std::isinf(tf) ? "timeout" : Table::Num(tf, 5),
              (std::isinf(ts) || std::isinf(tf)) ? "n/a"
                                                 : Table::Num(tf / ts, 2)});
  }
  a.Print();

  // ---- (b) Gibbs sampling ---------------------------------------------
  const double gibbs_scale = bench::EnvDouble("DW_BENCH_GIBBS_SCALE", 3e-4);
  const factor::FactorGraph graph = factor::MakePaleoLike(gibbs_scale, 7);
  factor::GibbsOptions go;
  go.topology = numa::Local4();
  go.sweeps = 6;
  go.burn_in = 2;
  go.strategy = factor::GibbsStrategy::kPerMachine;
  const factor::GibbsResult classic_gibbs = factor::RunGibbs(graph, go);
  go.strategy = factor::GibbsStrategy::kPerNode;
  const factor::GibbsResult dw_gibbs = factor::RunGibbs(graph, go);

  // ---- (b) neural network ----------------------------------------------
  nn::MlpConfig cfg;
  cfg.layer_sizes = {784, 120, 80, 60, 40, 20, 10};  // 7 layers, CI-sized
  const nn::Mlp mlp(cfg);
  const nn::DigitData digits =
      nn::MakeMnistLike(bench::EnvInt("DW_BENCH_NN_EXAMPLES", 256), 3);
  nn::NnTrainOptions no;
  no.topology = numa::Local4();
  no.workers_per_node = 2;
  no.epochs = 1;
  no.eval_examples = 32;
  no.strategy = nn::NnStrategy::kClassic;
  const nn::NnTrainResult classic_nn = nn::TrainParallel(mlp, digits, no);
  no.strategy = nn::NnStrategy::kDimmWitted;
  const nn::NnTrainResult dw_nn = nn::TrainParallel(mlp, digits, no);

  Table b("Figure 17(b): variables/second (millions, local4 memory model)");
  b.SetHeader({"Task", "Classic choice", "DimmWitted", "speedup"});
  b.AddRow({"Gibbs (Paleo-like)",
            Table::Num(classic_gibbs.SimSamplesPerSec() / 1e6, 2),
            Table::Num(dw_gibbs.SimSamplesPerSec() / 1e6, 2),
            bench::Ratio(dw_gibbs.SimSamplesPerSec(),
                         classic_gibbs.SimSamplesPerSec())});
  b.AddRow({"NN (MNIST-like)",
            Table::Num(classic_nn.SimNeuronsPerSec() / 1e6, 2),
            Table::Num(dw_nn.SimNeuronsPerSec() / 1e6, 2),
            bench::Ratio(dw_nn.SimNeuronsPerSec(),
                         classic_nn.SimNeuronsPerSec())});
  b.Print();
  std::puts("\nShape check vs paper: PerNode-based execution beats the"
            "\nclassic (PerMachine/Sharding) choice for both extensions"
            "\n(paper: ~4x for Gibbs, >10x for the NN).");
  return 0;
}
