// Figure 12: DimmWitted's own tradeoff curves on four tasks
// (SVM on RCV1 and Music, LP on Amazon and Google):
//  (a) access-method selection -- time to reach {1,10,50,100}% of the
//      optimal loss for row-wise vs column(-to-row) access;
//  (b) model replication -- the same thresholds for PerCore / PerNode /
//      PerMachine.
// Times are reported both as host wall clock and local2-simulated.
#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

namespace {

struct Task {
  std::string label;
  data::Dataset dataset;
  const models::ModelSpec* spec;
  double row_step;
  double col_step;
};

std::string TimeCell(const engine::RunResult& rr, double target,
                     bool simulated) {
  const double t =
      simulated ? rr.SimSecToLoss(target) : rr.WallSecToLoss(target);
  return std::isinf(t) ? "timeout" : Table::Num(t, simulated ? 5 : 2);
}

}  // namespace

int main() {
  const numa::Topology topo = numa::Local2();
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 80);

  models::SvmSpec svm;
  models::LpSpec lp;
  const std::vector<Task> tasks = {
      {"SVM (RCV1)", bench::BenchRcv1(), &svm, 0.1, 0.5},
      {"SVM (Music)", data::WithBinaryLabels(bench::BenchMusic()), &svm,
       0.02, 0.2},
      {"LP (Amazon)", bench::BenchAmazonLp(), &lp, 0.05, 0.05},
      {"LP (Google)", bench::BenchGoogleLp(), &lp, 0.05, 0.05},
  };
  const double pcts[] = {1, 10, 50, 100};

  // ---- (a) access methods ------------------------------------------------
  Table a("Figure 12(a): access methods -- sim seconds to reach p% of"
          " optimal loss (local2)");
  a.SetHeader({"Task", "Method", "1%", "10%", "50%", "100%"});
  for (const Task& task : tasks) {
    const double opt_loss =
        bench::OptimalLoss(task.dataset, *task.spec, 150, task.col_step);
    const AccessMethod col = task.spec->HasCtr() ? AccessMethod::kColToRow
                                                 : AccessMethod::kColWise;
    const auto row_rr = bench::RunBestStep(
        task.dataset, *task.spec,
        MakeOptions(topo, AccessMethod::kRowWise, ModelReplication::kPerNode,
                    DataReplication::kFullReplication),
        max_epochs, opt_loss, {0.3, 0.1, 0.03, task.row_step});
    const auto col_rr = bench::RunBestStep(
        task.dataset, *task.spec,
        MakeOptions(topo, col, ModelReplication::kPerMachine,
                    DataReplication::kSharding),
        max_epochs, opt_loss, {0.5, 0.1, 0.05, task.col_step});
    for (const auto& [name, rr] :
         {std::pair<const char*, const engine::RunResult*>{"Row-wise",
                                                           &row_rr},
          {"Column", &col_rr}}) {
      std::vector<std::string> cells{task.label, name};
      for (double p : pcts) {
        cells.push_back(TimeCell(*rr, bench::Target(opt_loss, p), true));
      }
      a.AddRow(cells);
    }
  }
  a.Print();

  // ---- (b) model replication ----------------------------------------------
  Table b("Figure 12(b): model replication -- sim seconds to reach p% of"
          " optimal loss (local2)");
  b.SetHeader({"Task", "Strategy", "1%", "10%", "50%", "100%"});
  for (const Task& task : tasks) {
    const double opt_loss =
        bench::OptimalLoss(task.dataset, *task.spec, 150, task.col_step);
    // Use the access method the optimizer picks for this task (row-wise
    // for the GLMs, column-to-row for LP).
    const AccessMethod access =
        opt::ChoosePlan(task.dataset, *task.spec, topo).access;
    const double step =
        access == AccessMethod::kRowWise ? task.row_step : task.col_step;
    for (ModelReplication mrep :
         {ModelReplication::kPerCore, ModelReplication::kPerNode,
          ModelReplication::kPerMachine}) {
      const auto rr = bench::RunBestStep(
          task.dataset, *task.spec,
          MakeOptions(topo, access, mrep, DataReplication::kSharding),
          max_epochs, opt_loss, {0.3, 0.1, 0.03, step});
      std::vector<std::string> cells{task.label, ToString(mrep)};
      for (double p : pcts) {
        cells.push_back(TimeCell(rr, bench::Target(opt_loss, p), true));
      }
      b.AddRow(cells);
    }
  }
  b.Print();
  std::puts("\nShape check vs paper: row-wise dominates for SVM, column for"
            "\nLP; PerNode wins for the SGD tasks while PerMachine wins for"
            "\nLP at tight losses.");
  return 0;
}
