// Figure 15: ratio of execution time per epoch (row-wise / column-wise)
// across the five architectures, for SVM (RCV1) and LP (Amazon). The
// paper's finding: the ratio grows with the socket count (alpha grows),
// making column methods relatively more attractive on bigger machines.
// Times come from the per-topology memory model (the hardware-efficiency
// substitution), driven by real measured traffic.
#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

namespace {

double SimPerEpoch(const data::Dataset& d, const models::ModelSpec& spec,
                   const numa::Topology& topo, AccessMethod access) {
  // Both methods run PerMachine (one shared model), as in the paper's
  // Sec. 3.2 setup: the alpha effect is the cost of writes to shared
  // state, so the state must actually be shared.
  const engine::RunResult rr = bench::RunEngine(
      d, spec,
      MakeOptions(topo, access, ModelReplication::kPerMachine,
                  DataReplication::kSharding),
      2);
  return rr.TotalSimSec() / rr.epochs.size();
}

}  // namespace

int main() {
  const data::Dataset rcv1 = bench::BenchRcv1();
  const data::Dataset amazon = bench::BenchAmazonLp();
  models::SvmSpec svm;
  models::LpSpec lp;

  Table t("Figure 15: row-wise / column-wise time per epoch across"
          " architectures (memory model)");
  t.SetHeader({"Machine", "#Cores x #Sockets", "SVM (RCV1)", "LP (Amazon)"});
  for (const numa::Topology& topo : numa::PaperMachines()) {
    const double svm_row =
        SimPerEpoch(rcv1, svm, topo, AccessMethod::kRowWise);
    // The paper's column method for SVM is GraphLab's column-to-row.
    const double svm_col =
        SimPerEpoch(rcv1, svm, topo, AccessMethod::kColToRow);
    const double lp_row =
        SimPerEpoch(amazon, lp, topo, AccessMethod::kRowWise);
    const double lp_ctr =
        SimPerEpoch(amazon, lp, topo, AccessMethod::kColToRow);
    t.AddRow({topo.name,
              std::to_string(topo.cores_per_node) + "x" +
                  std::to_string(topo.num_nodes),
              Table::Num(svm_row / svm_col, 3),
              Table::Num(lp_row / lp_ctr, 3)});
  }
  t.Print();
  std::puts("\nShape check vs paper: the row/column ratio increases with the"
            "\nnumber of sockets (alpha grows from ~4 to ~12), i.e. row-wise"
            "\nbecomes relatively slower on larger machines.");
  return 0;
}
