// Figure 16: what drives the PerMachine vs PerNode choice.
//  (a) Architecture: sim time to reach 50% of optimal loss for SVM (RCV1),
//      ratio PerMachine/PerNode across the five machines -- PerNode's
//      advantage grows with the socket count.
//  (b) Sparsity: the same ratio on element-subsampled Music -- sparse
//      updates favor PerMachine (little contention), dense updates favor
//      PerNode.
#include "data/transforms.h"

#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

namespace {

double SimToTarget(const data::Dataset& d, const models::ModelSpec& spec,
                   const numa::Topology& topo, ModelReplication mrep,
                   double target, int max_epochs, double opt_loss) {
  const engine::RunResult rr = bench::RunBestStep(
      d, spec,
      MakeOptions(topo, AccessMethod::kRowWise, mrep,
                  DataReplication::kSharding),
      max_epochs, opt_loss);
  return rr.SimSecToLoss(target);
}

}  // namespace

int main() {
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 60);
  models::SvmSpec svm;

  // ---- (a) across architectures -----------------------------------------
  const data::Dataset rcv1 = bench::BenchRcv1();
  const double opt_rcv1 = bench::OptimalLoss(rcv1, svm);
  const double target = bench::Target(opt_rcv1, 50.0);

  Table a("Figure 16(a): PerMachine/PerNode sim time to 50% loss,"
          " SVM (RCV1)");
  a.SetHeader({"Machine", "#Cores x #Sockets", "PerMachine s", "PerNode s",
               "ratio (PM/PN)"});
  for (const numa::Topology& topo : numa::PaperMachines()) {
    const double pm = SimToTarget(rcv1, svm, topo,
                                  ModelReplication::kPerMachine, target,
                                  max_epochs, opt_rcv1);
    const double pn = SimToTarget(rcv1, svm, topo,
                                  ModelReplication::kPerNode, target,
                                  max_epochs, opt_rcv1);
    a.AddRow({topo.name,
              std::to_string(topo.cores_per_node) + "x" +
                  std::to_string(topo.num_nodes),
              std::isinf(pm) ? "timeout" : Table::Num(pm, 5),
              std::isinf(pn) ? "timeout" : Table::Num(pn, 5),
              (std::isinf(pm) || std::isinf(pn)) ? "n/a"
                                                 : Table::Num(pm / pn, 2)});
  }
  a.Print();

  // ---- (b) across sparsity ------------------------------------------------
  const data::Dataset music = data::WithBinaryLabels(bench::BenchMusic());
  Table b("Figure 16(b): PerMachine/PerNode sim time to 50% loss vs"
          " update sparsity (Music subsampled, local4)");
  b.SetHeader({"keep frac", "PerMachine s", "PerNode s", "ratio (PM/PN)"});
  const numa::Topology topo = numa::Local4();
  for (double keep : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    const data::Dataset sub =
        keep < 1.0 ? data::SubsampleElements(music, keep, 77) : music;
    const double opt_sub = bench::OptimalLoss(sub, svm, 120, 0.02);
    const double tgt = bench::Target(opt_sub, 50.0);
    const double pm = SimToTarget(sub, svm, topo,
                                  ModelReplication::kPerMachine, tgt,
                                  max_epochs, opt_sub);
    const double pn = SimToTarget(sub, svm, topo,
                                  ModelReplication::kPerNode, tgt,
                                  max_epochs, opt_sub);
    b.AddRow({Table::Num(keep, 2),
              std::isinf(pm) ? "timeout" : Table::Num(pm, 5),
              std::isinf(pn) ? "timeout" : Table::Num(pn, 5),
              (std::isinf(pm) || std::isinf(pn)) ? "n/a"
                                                 : Table::Num(pm / pn, 2)});
  }
  b.Print();
  std::puts("\nShape check vs paper: the PM/PN ratio rises with socket count"
            "\nin (a) and with update density in (b) -- sparse updates are"
            "\nthe one regime where PerMachine can win.");
  return 0;
}
