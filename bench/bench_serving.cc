// Serving benchmarks, nine experiments in one binary:
//
//  1. Throughput vs thread count x replication strategy -- the serving
//     analogue of Fig. 8, run with an explicit per-family replication
//     override (the bench escape hatch; production lets the opt:: cost
//     model decide). Serving has no statistical side at all (reads only),
//     so PerNode should dominate PerMachine once readers span sockets.
//  2. Batched vs scalar scoring kernels on a dense synthetic workload at
//     max threads: one ModelSpec::PredictBatch call per mini-batch (the
//     cache-blocked GLM kernel) against row-by-row Predict. This is the
//     ROADMAP "batch-aware scoring kernels" number CI tracks; the bench
//     exits nonzero if the batched kernel falls under the gate.
//  3. A closed-loop SLO search (ROADMAP "latency SLOs in the bench"):
//     binary-search the offered load for the max sustainable rows/sec
//     whose measured p99 stays under a target.
//  4. Live training->serving: two named families (a wide LR and a narrow
//     SVM) with cost-model-chosen replication, each refreshed by its own
//     serve::SnapshotExporter DURING training, under concurrent scoring
//     load. Reports per-family rows/sec, p50/p99, admission counters,
//     and measured snapshot staleness (ms + versions behind) -- the
//     staleness-vs-throughput tradeoff of the async refresh pipeline.
//  5. Collocated fetch vs request-carried features -- the wide-model
//     serving analogue of Fig. 9's data-replication study. The same
//     dense scoring load runs three ways: id-keyed against a kReplicated
//     serve::FeatureStore (every gather node-local), id-keyed against a
//     kSharded store (a (n-1)/n share of gathers crosses the
//     interconnect), and carried-feature requests (the client ships
//     every row). The memory-model numbers expose the locality gap the
//     wall clock can't show on this single-domain host.
//  6. Cost-aware admission + per-client fair queuing under overload: one
//     unthrottled hog client floods a deliberately under-provisioned
//     (one-worker) engine while several mice trickle paced synchronous
//     requests, twice -- once with the per-family FIFO baseline
//     (fair_queuing=false) and once with deficit-round-robin fair
//     queuing. Admission runs against a queueing-delay budget costed by
//     opt::AdmissionController (memory-model prior calibrated online by
//     the workers' measured batch times). Gated on the mice's p99 AND
//     served fraction being strictly better under fair queuing, and on
//     the calibrated service-time estimate converging to within 2x of
//     the measured EWMA.
//  7. Telemetry overhead + stage decomposition: the same batched
//     closed-loop scoring run, interleaved with telemetry fully on
//     (obs::Registry instruments, per-stage histograms, sampled span
//     tracing, a live 25 ms obs::TelemetryExporter) and fully off (the
//     no-op registry). Gated on the throughput overhead staying under
//     DW_BENCH_TEL_MAX_OVERHEAD (default 3%), and on the per-stage
//     latency means (queue..complete) summing to within 10% of the
//     measured mean end-to-end latency -- the decomposition check that
//     catches a stage boundary drifting away from what serve.latency_ms
//     measures.
//  8. SIMD dispatch levels + int8-quantized scoring: the experiment-2
//     dense workload scored through PredictBatch with the kernel level
//     FORCED to each tier the host supports (scalar / avx2 / avx512 --
//     the float levels are bitwise-identical, so this isolates pure
//     kernel throughput), plus the dequantize-free int8 path
//     (PredictBatchQuantized against Publish-style quantized weights).
//     Gated on the best SIMD level sustaining at least
//     DW_BENCH_SIMD_MIN_RATIO of the tiled-scalar rate (a >= gate with a
//     noisy-runner margin, not a speedup promise: the dense kernels are
//     memory-bound at scale) and on every int8 margin landing within the
//     documented quantization bound.
//  9. Live placement tuning under a mid-run traffic shift: a family +
//     feature store frozen at registration into the publish-heavy
//     optimum (kPerMachine model, kSharded store) serve a workload that
//     flips to read-heavy halfway. The opt::PlacementTuner's scans diff
//     the telemetry registry, re-run the placement choosers on the
//     OBSERVED reads-per-publish, and live-migrate through the hot-swap
//     republish path while six producer threads verify every margin
//     bitwise. Gated on >= 1 migration happening, on zero failed or
//     torn requests across the migrations, and on post-migration
//     throughput recovering to DW_BENCH_TUNER_MIN_RECOVERY (default
//     0.9) of a statically-optimal oracle run. The JSON artifact
//     carries the full audit trail with each decision's cost-model
//     inputs.
// 10. Delta refresh cost vs churn: one full table publish, then one
//     PublishDelta per churn fraction (0.1% -> 100%) over contiguous
//     key windows, reporting delta bytes against the full-rewrite
//     baseline -- the KV-store claim that refresh bandwidth scales with
//     churn, not table size. Gated on delta bytes <= 0.25x of a full
//     rewrite at 1% churn. A second half scores the SAME workload by
//     row id and by key (interleaved pairs, best p99 per mode) and
//     gates the key path's p99 at <= 1.5x the id path's -- the index
//     probe must not tax the request path.
//
// Measured rows/sec comes from the host wall clock; memory-model rows/sec
// applies the calibrated topology model to the logically-counted serving
// traffic, per the substitution used by every other bench.
//
// `--smoke` shrinks every experiment to a seconds-long schema check: CI
// runs it per commit to validate the DW_BENCH_JSON artifact (gates are
// reported but not enforced; shared runners are too noisy for that).
//
// Knobs: DW_BENCH_TOPO (default local2), DW_BENCH_SERVE_ROWS (default
// 20000), DW_BENCH_SCALE (dataset size multiplier), DW_BENCH_DENSE_ROWS /
// DW_BENCH_DENSE_DIM (kernel-comparison workload, default 1024 x 4096),
// DW_BENCH_KERNEL_SEC (seconds per kernel measurement, default 0.4),
// DW_BENCH_MIN_SPEEDUP (batched/scalar gate, default 1.5),
// DW_BENCH_SLO_P99_MS (p99 target, default 2.0), DW_BENCH_SLO_TRIALS
// (search iterations, default 5), DW_BENCH_SLO_TRIAL_SEC (seconds per
// trial, default 0.4), DW_BENCH_STALE_SEC (live-serving window, default
// 1.0), DW_BENCH_STORE_ROWS / DW_BENCH_STORE_DIM (feature-store workload,
// default 4096 x 2048), DW_BENCH_ADM_SEC / DW_BENCH_ADM_DIM /
// DW_BENCH_ADM_BUDGET_MS (admission overload window, row width, and
// queueing-delay budget; defaults 1.0 / 4096 / 4.0), DW_BENCH_TEL_TRIALS
// / DW_BENCH_TEL_MAX_OVERHEAD (telemetry on/off trial pairs and the
// overhead gate; defaults 3 / 0.03), DW_BENCH_SIMD_MIN_RATIO (best-SIMD
// over tiled-scalar gate, default 0.9), DW_BENCH_TUNER_SEC /
// DW_BENCH_TUNER_MIN_RECOVERY (per-phase window and the post-migration
// recovery gate; defaults 0.5 / 0.9), DW_BENCH_DELTA_ROWS /
// DW_BENCH_DELTA_DIM / DW_BENCH_DELTA_PAGE_ROWS (churn-sweep store
// shape; defaults 8192 / 256 / 32), DW_BENCH_DELTA_MAX_RATIO (delta
// bytes gate at 1% churn, default 0.25), DW_BENCH_KEY_P99_TOL /
// DW_BENCH_DELTA_PAIRS (key-vs-id p99 tolerance and interleaved trial
// pairs; defaults 1.5 / 2), DW_BENCH_JSON (path: write the
// machine-readable result artifact CI archives per commit; schema v8
// adds the feature_store.delta section -- churn sweep with byte
// accounting, key-vs-id latency, and both delta gates -- and reworks
// the telemetry gate onto a best-of-k estimator over the off/on ratios
// of k >= 3 interleaved trial pairs, recording every pair ratio and
// their median as the drift diagnostic).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "kernels/dispatch.h"
#include "kernels/score_kernels.h"
#include "data/synthetic.h"
#include "numa/memory_model.h"
#include "obs/exporter.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_exporter.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dw {
namespace {

using matrix::Index;

serve::ServingFamilyOptions PinnedFamily(Index dim, serve::Replication rep) {
  serve::ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = rep;
  return o;
}

// --- experiment 1: replication x threads ----------------------------------

struct ServeRun {
  std::string replication;
  int threads = 0;
  double measured_rows_per_sec = 0.0;
  double sim_rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double remote_mb = 0.0;
};

// The memory-model input for the run's total traffic under BALANCED
// routing: every active node serves an equal share of the rows. On this
// small host, which worker happens to drain the queue is scheduling noise
// (virtual cores are oversubscribed onto few physical CPUs); a production
// load balancer -- like the trainer's per-epoch partitioning -- hands each
// node an equal share, and that is the regime the Fig. 8-style comparison
// is about. Under kPerMachine the canonical share of model reads from
// nodes other than the replica's crosses the interconnect.
numa::SimulationInput BalancedSimInput(const serve::ServingStats& stats,
                                       const numa::Topology& topo,
                                       serve::Replication rep, int threads,
                                       uint64_t model_bytes) {
  const int nodes_used = std::min(threads, topo.num_nodes);
  numa::SimulationInput in(topo.num_nodes);
  const numa::AccessCounters& t = stats.traffic;
  const uint64_t model_total = t.model_read_bytes + t.remote_read_bytes;
  for (int n = 0; n < nodes_used; ++n) {
    numa::AccessCounters c;
    c.local_read_bytes = t.local_read_bytes / nodes_used;
    c.flops = t.flops / nodes_used;
    c.updates = t.updates / nodes_used;
    if (rep == serve::Replication::kPerNode || n == 0) {
      c.model_read_bytes = model_total / nodes_used;
    } else {
      c.remote_read_bytes = model_total / nodes_used;
    }
    in.traffic.per_node[n] = c;
    in.active_workers[n] = std::max(1, threads / nodes_used);
  }
  in.model_sharing_sockets =
      rep == serve::Replication::kPerMachine ? nodes_used : 1;
  in.model_bytes = model_bytes;
  return in;
}

ServeRun RunServing(const data::Dataset& d, const models::ModelSpec& spec,
                    const std::vector<double>& weights,
                    const numa::Topology& topo, serve::Replication rep,
                    int threads, int total_rows) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.num_threads = threads;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  // Scalar scoring on purpose: the Fig. 8 analogue is about what model
  // REPLICATION costs when every row re-reads the replica. Batched
  // scoring streams each replica tile once per batch, which (by design)
  // collapses most of the PerNode-vs-PerMachine traffic gap -- that
  // effect is experiment 2's story, not this table's.
  opts.scoring = serve::ScoringMode::kScalar;
  serve::ServingEngine server(opts);
  // The bench pins the strategy per run: this table sweeps the axis the
  // cost model would otherwise collapse.
  const Status reg = server.RegisterFamily(
      "lr", &spec, PinnedFamily(static_cast<Index>(weights.size()), rep));
  DW_CHECK(reg.ok()) << reg.ToString();
  server.Publish("lr", weights);
  const Status st = server.Start();
  DW_CHECK(st.ok()) << st.ToString();

  const int kProducers = 4;
  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<double>> futures;
      futures.reserve(total_rows / kProducers + 1);
      std::vector<Index> idx;
      std::vector<double> vals;
      for (int r = p; r < total_rows; r += kProducers) {
        const auto row = d.a.Row(static_cast<Index>(r % d.a.rows()));
        idx.assign(row.indices, row.indices + row.nnz);
        vals.assign(row.values, row.values + row.nnz);
        for (;;) {
          auto fut = server.Score("lr", idx, vals);
          if (fut.ok()) {
            futures.push_back(std::move(fut).value());
            break;
          }
          // Only queue-full back-pressure is retryable; anything else
          // would spin forever.
          DW_CHECK(fut.status().code() ==
                   Status::Code::kResourceExhausted)
              << fut.status().ToString();
          std::this_thread::yield();
        }
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  const double wall = timer.Seconds();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  DW_CHECK_EQ(stats.requests, static_cast<uint64_t>(total_rows));

  ServeRun out;
  out.replication = ToString(rep);
  out.threads = threads;
  out.measured_rows_per_sec = total_rows / wall;
  out.p50_ms = stats.p50_latency_ms;
  out.p99_ms = stats.p99_latency_ms;
  out.remote_mb = stats.traffic.remote_read_bytes / (1024.0 * 1024.0);
  const numa::MemoryModel model(topo);
  const uint64_t model_bytes =
      static_cast<uint64_t>(d.a.cols()) * sizeof(double);
  const double sim_sec =
      model
          .SimulateEpoch(
              BalancedSimInput(stats, topo, rep, threads, model_bytes))
          .total_sec;
  out.sim_rows_per_sec = sim_sec > 0.0 ? total_rows / sim_sec : 0.0;
  return out;
}

// --- experiment 2: batched vs scalar kernels ------------------------------

struct KernelCompare {
  int rows = 0;
  int dim = 0;
  int threads = 0;
  double scalar_rows_per_sec = 0.0;
  double batched_rows_per_sec = 0.0;
  double speedup = 0.0;
};

/// Scores the dense synthetic workload for `run_sec` with `threads`
/// threads, each looping over its own row slice. `batched` picks one
/// PredictBatch call per 256-row chunk vs one Predict call per row --
/// the pure kernel comparison, no queue or promise machinery in the way.
double MeasureScoringRate(const models::ModelSpec& spec,
                          const std::vector<double>& weights,
                          const std::vector<matrix::SparseVectorView>& rows,
                          int threads, bool batched, double run_sec) {
  constexpr size_t kBatch = 256;
  std::atomic<uint64_t> total_rows{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  WallTimer timer;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(run_sec));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const size_t lo = rows.size() * t / threads;
      const size_t hi = rows.size() * (t + 1) / threads;
      if (lo == hi) return;
      const Index dim = static_cast<Index>(weights.size());
      std::vector<double> out(hi - lo);
      uint64_t scored = 0;
      // `sink` defeats dead-code elimination of the scoring loop.
      double sink = 0.0;
      while (std::chrono::steady_clock::now() < deadline) {
        if (batched) {
          for (size_t b = lo; b < hi; b += kBatch) {
            const size_t n = std::min(kBatch, hi - b);
            spec.PredictBatch(weights.data(), dim, rows.data() + b, n,
                              out.data() + (b - lo));
          }
        } else {
          for (size_t r = lo; r < hi; ++r) {
            out[r - lo] = spec.Predict(weights.data(), rows[r]);
          }
        }
        sink += out[0];
        scored += hi - lo;
      }
      if (sink == 0.12345) std::printf(" ");
      total_rows.fetch_add(scored);
    });
  }
  for (auto& t : pool) t.join();
  // Spawn overhead and final-pass overshoot are inside the window, and the
  // rows they score are counted -- the same small bias for both kernels.
  const double wall = timer.Seconds();
  return wall > 0.0 ? static_cast<double>(total_rows.load()) / wall : 0.0;
}

KernelCompare CompareKernels(int rows, int dim, int threads) {
  data::DenseTableParams params;
  params.rows = static_cast<Index>(rows);
  params.cols = static_cast<Index>(dim);
  params.seed = 17;
  const matrix::CsrMatrix a = data::MakeDenseTable(params);
  // Explicit dense views (null indices), the form dense serving requests
  // take after admission: both kernels score values-only rows, so the
  // comparison isolates the scoring loop, not payload-size differences.
  std::vector<matrix::SparseVectorView> views;
  views.reserve(rows);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto row = a.Row(i);
    views.push_back({nullptr, row.values, row.nnz});
  }

  Rng rng(23);
  std::vector<double> weights(dim);
  for (auto& w : weights) w = rng.Gaussian(0.0, 1.0);

  models::LogisticSpec lr;
  const double run_sec = bench::EnvDouble("DW_BENCH_KERNEL_SEC", 0.4);
  // Warm both paths (page in the workload, settle the frequency governor).
  MeasureScoringRate(lr, weights, views, threads, false, run_sec * 0.25);
  MeasureScoringRate(lr, weights, views, threads, true, run_sec * 0.25);

  KernelCompare out;
  out.rows = rows;
  out.dim = dim;
  out.threads = threads;
  out.scalar_rows_per_sec =
      MeasureScoringRate(lr, weights, views, threads, false, run_sec);
  out.batched_rows_per_sec =
      MeasureScoringRate(lr, weights, views, threads, true, run_sec);
  out.speedup = out.scalar_rows_per_sec > 0.0
                    ? out.batched_rows_per_sec / out.scalar_rows_per_sec
                    : 0.0;
  return out;
}

// --- experiment 8: SIMD dispatch levels + int8 quantized scoring ----------

struct KernelLevelRun {
  std::string level;
  bool supported = false;
  double rows_per_sec = 0.0;  ///< 0 when the host cannot run the level
};

struct SimdCompare {
  int rows = 0;
  int dim = 0;
  int threads = 0;
  std::vector<KernelLevelRun> levels;      ///< scalar, avx2, avx512
  double best_simd_rows_per_sec = 0.0;
  std::string best_simd_level = "none";    ///< "none" on a scalar-only host
  double simd_over_scalar = 0.0;
  bool simd_ok = true;                     ///< vacuously true without SIMD
  double int8_rows_per_sec = 0.0;
  double int8_over_f64 = 0.0;
  double int8_scale = 0.0;
  double int8_max_abs_err = 0.0;   ///< worst measured |margin_q - margin|
  double int8_err_bound = 0.0;     ///< worst documented per-row bound
  bool int8_within_bound = false;  ///< every row within ITS OWN bound
};

/// PredictBatchQuantized throughput on the same workload shape as
/// MeasureScoringRate's batched mode (256-row chunks).
double MeasureQuantizedRate(const models::ModelSpec& spec,
                            const std::vector<int8_t>& qweights, double scale,
                            const std::vector<matrix::SparseVectorView>& rows,
                            int threads, double run_sec) {
  constexpr size_t kBatch = 256;
  std::atomic<uint64_t> total_rows{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  WallTimer timer;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(run_sec));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const size_t lo = rows.size() * t / threads;
      const size_t hi = rows.size() * (t + 1) / threads;
      if (lo == hi) return;
      const Index dim = static_cast<Index>(qweights.size());
      std::vector<double> out(hi - lo);
      uint64_t scored = 0;
      double sink = 0.0;
      while (std::chrono::steady_clock::now() < deadline) {
        for (size_t b = lo; b < hi; b += kBatch) {
          const size_t n = std::min(kBatch, hi - b);
          spec.PredictBatchQuantized(qweights.data(), scale, dim,
                                     rows.data() + b, n,
                                     out.data() + (b - lo));
        }
        sink += out[0];
        scored += hi - lo;
      }
      if (sink == 0.12345) std::printf(" ");
      total_rows.fetch_add(scored);
    });
  }
  for (auto& t : pool) t.join();
  const double wall = timer.Seconds();
  return wall > 0.0 ? static_cast<double>(total_rows.load()) / wall : 0.0;
}

SimdCompare CompareSimdLevels(int rows, int dim, int threads,
                              double min_ratio) {
  data::DenseTableParams params;
  params.rows = static_cast<Index>(rows);
  params.cols = static_cast<Index>(dim);
  params.seed = 29;
  const matrix::CsrMatrix a = data::MakeDenseTable(params);
  std::vector<matrix::SparseVectorView> views;
  views.reserve(rows);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto row = a.Row(i);
    views.push_back({nullptr, row.values, row.nnz});
  }
  Rng rng(31);
  std::vector<double> weights(dim);
  for (auto& w : weights) w = rng.Gaussian(0.0, 1.0);
  std::vector<int8_t> qweights(dim);
  const double scale =
      kernels::QuantizeWeights(weights.data(), dim, qweights.data());

  // Identity link: measured margins ARE the quantity the error contract
  // bounds, no Lipschitz factor to fold in.
  models::LeastSquaresSpec ls;
  const double run_sec = bench::EnvDouble("DW_BENCH_KERNEL_SEC", 0.4);

  SimdCompare out;
  out.rows = rows;
  out.dim = dim;
  out.threads = threads;
  out.int8_scale = scale;
  double scalar_rate = 0.0;
  for (const kernels::KernelLevel level :
       {kernels::KernelLevel::kScalar, kernels::KernelLevel::kAvx2,
        kernels::KernelLevel::kAvx512}) {
    KernelLevelRun run;
    run.level = kernels::ToString(level);
    run.supported = kernels::LevelSupported(level);
    if (run.supported) {
      kernels::ScopedKernelLevelForTesting forced(level);
      MeasureScoringRate(ls, weights, views, threads, true, run_sec * 0.25);
      run.rows_per_sec =
          MeasureScoringRate(ls, weights, views, threads, true, run_sec);
      if (level == kernels::KernelLevel::kScalar) {
        scalar_rate = run.rows_per_sec;
      } else if (run.rows_per_sec > out.best_simd_rows_per_sec) {
        out.best_simd_rows_per_sec = run.rows_per_sec;
        out.best_simd_level = run.level;
      }
    }
    out.levels.push_back(std::move(run));
  }
  if (out.best_simd_rows_per_sec > 0.0 && scalar_rate > 0.0) {
    out.simd_over_scalar = out.best_simd_rows_per_sec / scalar_rate;
    out.simd_ok = out.simd_over_scalar >= min_ratio;
  }

  // Int8 path at the active (best) level: throughput plus the error-
  // contract audit -- every margin vs the float margin, against its own
  // per-row bound (scale/2) * sum|x| + reassociation slack.
  {
    MeasureQuantizedRate(ls, qweights, scale, views, threads, run_sec * 0.25);
    out.int8_rows_per_sec =
        MeasureQuantizedRate(ls, qweights, scale, views, threads, run_sec);
    const double f64_best =
        std::max(out.best_simd_rows_per_sec, scalar_rate);
    out.int8_over_f64 =
        f64_best > 0.0 ? out.int8_rows_per_sec / f64_best : 0.0;
    std::vector<double> f64(views.size());
    std::vector<double> i8(views.size());
    ls.PredictBatch(weights.data(), dim, views.data(), views.size(),
                    f64.data());
    ls.PredictBatchQuantized(qweights.data(), scale, dim, views.data(),
                             views.size(), i8.data());
    out.int8_within_bound = true;
    for (size_t r = 0; r < views.size(); ++r) {
      double abs_sum = 0.0;
      for (size_t k = 0; k < views[r].nnz; ++k) {
        abs_sum += std::abs(views[r].values[k]);
      }
      const double err = std::abs(i8[r] - f64[r]);
      const double bound = (scale / 2) * abs_sum + 1e-9 * (1.0 + abs_sum);
      out.int8_max_abs_err = std::max(out.int8_max_abs_err, err);
      out.int8_err_bound = std::max(out.int8_err_bound, bound);
      if (err > bound) out.int8_within_bound = false;
    }
  }
  return out;
}

// --- experiment 3: closed-loop SLO search ---------------------------------

struct SloTrial {
  double offered_rows_per_sec = 0.0;  ///< 0 = unthrottled
  double achieved_rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  bool meets_slo = false;
};

struct SloResult {
  double target_p99_ms = 0.0;
  double unthrottled_rows_per_sec = 0.0;
  double max_rows_per_sec_under_slo = 0.0;  ///< 0 if no trial met the SLO
  std::vector<SloTrial> trials;
};

/// Sleeps until `when` with a spin tail: timer granularity is far coarser
/// than the sub-10us inter-arrival gaps a high offered load needs.
void SleepUntilSpin(std::chrono::steady_clock::time_point when) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= when) return;
    const auto left = when - now;
    if (left > std::chrono::microseconds(200)) {
      std::this_thread::sleep_for(left - std::chrono::microseconds(100));
    } else {
      std::this_thread::yield();
    }
  }
}

/// One closed-loop trial: a single producer offers rows at `offered_rate`
/// (rows/sec; <= 0 means as fast as possible) against a fresh engine, and
/// the measured latency distribution decides whether the rate is
/// sustainable under the p99 target.
SloTrial RunSloTrial(const data::Dataset& d, const models::ModelSpec& spec,
                     const std::vector<double>& weights,
                     const numa::Topology& topo, double offered_rate,
                     double target_p99_ms, double trial_sec, int cap_rows) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.num_threads = topo.total_cores();
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  serve::ServingEngine server(opts);
  DW_CHECK(server
               .RegisterFamily("lr", &spec,
                               PinnedFamily(static_cast<Index>(weights.size()),
                                            serve::Replication::kPerNode))
               .ok());
  server.Publish("lr", weights);
  DW_CHECK(server.Start().ok());

  int rows = cap_rows;
  if (offered_rate > 0.0) {
    rows = std::min(rows, std::max(200, static_cast<int>(offered_rate *
                                                         trial_sec)));
  }
  std::vector<std::future<double>> futures;
  futures.reserve(rows);
  std::vector<Index> idx;
  std::vector<double> vals;
  WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rows; ++r) {
    if (offered_rate > 0.0) {
      SleepUntilSpin(start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(r) / offered_rate)));
    }
    const auto row = d.a.Row(static_cast<Index>(r % d.a.rows()));
    idx.assign(row.indices, row.indices + row.nnz);
    vals.assign(row.values, row.values + row.nnz);
    for (;;) {
      auto fut = server.Score("lr", idx, vals);
      if (fut.ok()) {
        futures.push_back(std::move(fut).value());
        break;
      }
      DW_CHECK(fut.status().code() == Status::Code::kResourceExhausted)
          << fut.status().ToString();
      std::this_thread::yield();
    }
  }
  for (auto& f : futures) f.get();
  const double wall = timer.Seconds();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  SloTrial t;
  t.offered_rows_per_sec = offered_rate;
  t.achieved_rows_per_sec = wall > 0.0 ? rows / wall : 0.0;
  t.p50_ms = stats.p50_latency_ms;
  t.p99_ms = stats.p99_latency_ms;
  t.max_ms = stats.max_latency_ms;
  t.meets_slo = stats.p99_latency_ms <= target_p99_ms;
  return t;
}

/// Finds the max offered rows/sec whose p99 stays under target: one
/// unthrottled probe for the upper bound, then bisection on offered load.
SloResult SearchMaxRateUnderSlo(const data::Dataset& d,
                                const models::ModelSpec& spec,
                                const std::vector<double>& weights,
                                const numa::Topology& topo,
                                double target_p99_ms, int iters,
                                double trial_sec, int cap_rows) {
  SloResult res;
  res.target_p99_ms = target_p99_ms;

  SloTrial top = RunSloTrial(d, spec, weights, topo, /*offered_rate=*/0.0,
                             target_p99_ms, trial_sec, cap_rows);
  res.unthrottled_rows_per_sec = top.achieved_rows_per_sec;
  res.trials.push_back(top);
  if (top.meets_slo) {
    // The engine meets the SLO flat out; no throttling needed.
    res.max_rows_per_sec_under_slo = top.achieved_rows_per_sec;
    return res;
  }
  double lo = 0.0;  // highest rate known to meet the SLO
  double hi = top.achieved_rows_per_sec;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= 0.0) break;
    SloTrial t = RunSloTrial(d, spec, weights, topo, mid, target_p99_ms,
                             trial_sec, cap_rows);
    res.trials.push_back(t);
    if (t.meets_slo) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  res.max_rows_per_sec_under_slo = lo;
  return res;
}

// --- experiment 4: live training->serving with async snapshot refresh ----

struct FamilyRun {
  serve::FamilyServingStats stats;
  std::string rationale;
  double exporter_period_ms = 0.0;
  serve::SnapshotExporter::Stats exporter;
};

/// Trains two models live (wide LR on the bench corpus, narrow SVM on a
/// small dense table), each wired to the registry through its own
/// SnapshotExporter, while producers score both families for
/// `duration_sec`. The registry chooses each family's replication from
/// its traffic estimate -- the read-heavy wide family replicates, the
/// hot-refresh narrow family keeps one copy.
std::vector<FamilyRun> RunLiveServing(const data::Dataset& wide_data,
                                      const numa::Topology& topo,
                                      double duration_sec,
                                      double wide_period_ms,
                                      double narrow_period_ms) {
  models::LogisticSpec lr;
  models::SvmSpec svm;
  const Index narrow_dim = 32;
  data::Dataset narrow_data;
  narrow_data.name = "narrow";
  narrow_data.a = data::MakeDenseTable(
      {.rows = 2000, .cols = narrow_dim, .feature_correlation = 0.2,
       .seed = 101});
  narrow_data.b =
      data::PlantClassificationLabels(narrow_data.a, narrow_dim, 0.0, 102);

  engine::EngineOptions topts;
  topts.topology = topo;
  engine::Engine wide_trainer(&wide_data, &lr, topts);
  engine::Engine narrow_trainer(&narrow_data, &svm, topts);
  DW_CHECK(wide_trainer.Init().ok());
  DW_CHECK(narrow_trainer.Init().ok());

  serve::ServingOptions opts;
  opts.topology = topo;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  serve::ServingEngine server(opts);
  // Traffic estimates drive the cost model: the wide family serves many
  // batches per (slow) publish; the narrow family is republished so hot
  // that replication would mostly copy models nobody read yet.
  serve::ServingFamilyOptions wide_opts;
  wide_opts.traffic.dim = wide_data.a.cols();
  wide_opts.traffic.reads_per_publish = 2048.0;
  // Deadline flushes keep real batches well under the 64-row cap; the
  // narrower estimate keeps the period bandwidth-bound on 2 sockets,
  // where replication actually pays.
  wide_opts.traffic.expected_batch_rows = 32.0;
  serve::ServingFamilyOptions narrow_opts;
  narrow_opts.traffic.dim = narrow_dim;
  narrow_opts.traffic.reads_per_publish = 0.25;
  DW_CHECK(server.RegisterFamily("wide-lr", &lr, wide_opts).ok());
  DW_CHECK(server.RegisterFamily("narrow-svm", &svm, narrow_opts).ok());

  serve::SnapshotExporter::Options wide_eopts;
  wide_eopts.period = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(wide_period_ms)));
  serve::SnapshotExporter::Options narrow_eopts;
  narrow_eopts.period = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(narrow_period_ms)));
  serve::SnapshotExporter wide_exporter(&wide_trainer, &server, "wide-lr",
                                        wide_eopts);
  serve::SnapshotExporter narrow_exporter(&narrow_trainer, &server,
                                          "narrow-svm", narrow_eopts);
  wide_exporter.Start();
  narrow_exporter.Start();
  DW_CHECK(server.Start().ok());

  // Trainers run epochs for the whole window on their own threads; the
  // exporters publish mid-training on their periods.
  std::atomic<bool> stop{false};
  auto train = [&stop, duration_sec](engine::Engine* e) {
    engine::RunConfig cfg;
    cfg.max_epochs = 1 << 30;
    cfg.wall_timeout_sec = duration_sec;
    cfg.eval_every = 1 << 30;  // no loss scans inside the timing window
    e->Run(cfg);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::thread wide_thread(train, &wide_trainer);
  std::thread narrow_thread(train, &narrow_trainer);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(duration_sec));
  auto produce = [&](const std::string& family, const data::Dataset& d) {
    std::vector<std::future<double>> futures;
    std::vector<Index> idx;
    std::vector<double> vals;
    Index i = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto row = d.a.Row(i++ % d.a.rows());
      idx.assign(row.indices, row.indices + row.nnz);
      vals.assign(row.values, row.values + row.nnz);
      auto fut = server.Score(family, idx, vals);
      if (fut.ok()) {
        futures.push_back(std::move(fut).value());
      } else {
        DW_CHECK(fut.status().code() == Status::Code::kResourceExhausted)
            << fut.status().ToString();
        std::this_thread::yield();
      }
      if (futures.size() >= 4096) {
        for (auto& f : futures) f.get();
        futures.clear();
      }
    }
    for (auto& f : futures) f.get();
  };
  std::thread wide_producer(produce, "wide-lr", std::cref(wide_data));
  std::thread narrow_producer(produce, "narrow-svm", std::cref(narrow_data));
  wide_producer.join();
  narrow_producer.join();
  stop.store(true, std::memory_order_release);
  wide_thread.join();
  narrow_thread.join();
  wide_exporter.Stop();
  narrow_exporter.Stop();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  std::vector<FamilyRun> out;
  for (const serve::FamilyServingStats& f : stats.families) {
    FamilyRun r;
    r.stats = f;
    r.rationale = server.registry().FindFamily(f.family)->rationale();
    const bool wide = f.family == "wide-lr";
    r.exporter = wide ? wide_exporter.stats() : narrow_exporter.stats();
    r.exporter_period_ms = wide ? wide_period_ms : narrow_period_ms;
    out.push_back(std::move(r));
  }
  return out;
}

// --- experiment 5: collocated fetch vs request-carried features -----------

struct StoreRun {
  std::string mode;       ///< "id-replicated" | "id-sharded" | "carried"
  std::string placement;  ///< store placement; "-" for carried
  std::string rationale;
  double measured_rows_per_sec = 0.0;
  double sim_rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double local_feature_mb = 0.0;
  double remote_feature_mb = 0.0;
};

/// The balanced-routing memory-model input for the store comparison: the
/// same convention as BalancedSimInput, but here the axis under study is
/// where the FEATURE bytes come from. Every active node serves an equal
/// share of the rows; under the sharded store 1/nodes of a node's
/// gathers hit its own shard and the rest cross the interconnect, while
/// the replicated store and carried payloads are node-local everywhere.
/// The model side is pinned kPerNode in every run, so it cancels out.
numa::SimulationInput BalancedStoreSimInput(const serve::ServingStats& stats,
                                            const numa::Topology& topo,
                                            bool sharded_features,
                                            int threads,
                                            uint64_t model_bytes) {
  const int nodes_used = std::min(threads, topo.num_nodes);
  numa::SimulationInput in(topo.num_nodes);
  const numa::AccessCounters& t = stats.traffic;
  // All data-side bytes are feature bytes in this experiment (id gathers
  // or carried payload; both total rows * dim * 8).
  const uint64_t feature_total = t.local_read_bytes + t.remote_read_bytes;
  for (int n = 0; n < nodes_used; ++n) {
    numa::AccessCounters c;
    const uint64_t share = feature_total / nodes_used;
    if (sharded_features) {
      c.local_read_bytes = share / nodes_used;
      c.remote_read_bytes = share - share / nodes_used;
    } else {
      c.local_read_bytes = share;
    }
    c.model_read_bytes = t.model_read_bytes / nodes_used;
    c.flops = t.flops / nodes_used;
    c.updates = t.updates / nodes_used;
    in.traffic.per_node[n] = c;
    in.active_workers[n] = std::max(1, threads / nodes_used);
  }
  in.model_sharing_sockets = 1;
  in.model_bytes = model_bytes;
  return in;
}

/// One store-comparison run: `total_rows` dense wide-model requests in
/// `mode`, batched scoring, model replication pinned kPerNode so the only
/// variable is the feature source.
StoreRun RunStoreServing(const std::vector<double>& table, Index store_rows,
                         Index dim, const models::ModelSpec& spec,
                         const std::vector<double>& weights,
                         const numa::Topology& topo, const std::string& mode,
                         int threads, int total_rows) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.num_threads = threads;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  opts.scoring = serve::ScoringMode::kBatched;
  serve::ServingEngine server(opts);
  DW_CHECK(server
               .RegisterFamily("wide", &spec,
                               PinnedFamily(dim, serve::Replication::kPerNode))
               .ok());
  const bool by_id = mode != "carried";
  if (by_id) {
    serve::StoreOptions sopts;
    sopts.placement_override = mode == "id-replicated"
                                   ? serve::StorePlacement::kReplicated
                                   : serve::StorePlacement::kSharded;
    const Status reg = server.RegisterStore("wide", store_rows, dim, sopts);
    DW_CHECK(reg.ok()) << reg.ToString();
  }
  server.Publish("wide", weights);
  if (by_id) server.PublishStore("wide", table);
  const Status st = server.Start();
  DW_CHECK(st.ok()) << st.ToString();

  const int kProducers = 4;
  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<double>> futures;
      futures.reserve(total_rows / kProducers + 1);
      std::vector<double> vals;
      for (int r = p; r < total_rows; r += kProducers) {
        const Index row = static_cast<Index>(r) % store_rows;
        if (!by_id) {
          // The carried form ships the whole row with every request --
          // the payload cost the id-keyed form exists to avoid.
          vals.assign(table.begin() + static_cast<size_t>(row) * dim,
                      table.begin() + static_cast<size_t>(row + 1) * dim);
        }
        for (;;) {
          auto fut = by_id ? server.Score("wide", row)
                           : server.Score("wide", {}, vals);
          if (fut.ok()) {
            futures.push_back(std::move(fut).value());
            break;
          }
          DW_CHECK(fut.status().code() == Status::Code::kResourceExhausted)
              << fut.status().ToString();
          std::this_thread::yield();
        }
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  const double wall = timer.Seconds();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  DW_CHECK_EQ(stats.requests, static_cast<uint64_t>(total_rows));

  StoreRun out;
  out.mode = mode;
  const serve::FeatureStore* store = server.FindStore("wide");
  out.placement = by_id ? ToString(store->placement()) : "-";
  out.rationale = by_id ? store->rationale() : "-";
  out.measured_rows_per_sec = total_rows / wall;
  out.p50_ms = stats.p50_latency_ms;
  out.p99_ms = stats.p99_latency_ms;
  const serve::FamilyServingStats& fam = stats.families[0];
  const double row_mb = dim * sizeof(double) / (1024.0 * 1024.0);
  if (by_id) {
    out.local_feature_mb = fam.local_store_rows * row_mb;
    out.remote_feature_mb = fam.remote_store_rows * row_mb;
  } else {
    out.local_feature_mb = static_cast<double>(total_rows) * row_mb;
  }
  const numa::MemoryModel model(topo);
  const double sim_sec =
      model
          .SimulateEpoch(BalancedStoreSimInput(
              stats, topo, mode == "id-sharded", threads,
              static_cast<uint64_t>(dim) * sizeof(double)))
          .total_sec;
  out.sim_rows_per_sec = sim_sec > 0.0 ? total_rows / sim_sec : 0.0;
  return out;
}

// --- experiment 10: delta refresh cost vs churn (KV feature store) --------

struct DeltaChurnPoint {
  double churn = 0.0;
  size_t keys = 0;
  uint64_t delta_bytes = 0;
  uint64_t full_bytes = 0;
  double ratio = 0.0;  ///< delta_bytes / full_bytes
  double publish_ms = 0.0;
};

struct DeltaModeRun {
  std::string mode;  ///< "by_id" | "by_key"
  double rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// One keyed-serving run: `total_rows` requests against a kSharded store
/// of identity keys, submitted by row id or by key -- everything else
/// identical, so the p50/p99 delta isolates what the index probe costs
/// on the request path.
DeltaModeRun RunKeyedServing(const std::vector<double>& table,
                             Index store_rows, Index dim,
                             const models::ModelSpec& spec,
                             const std::vector<double>& weights,
                             const numa::Topology& topo, bool by_key,
                             Index page_rows, int threads, int total_rows) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.num_threads = threads;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  opts.scoring = serve::ScoringMode::kBatched;
  serve::ServingEngine server(opts);
  DW_CHECK(server
               .RegisterFamily("kv", &spec,
                               PinnedFamily(dim, serve::Replication::kPerNode))
               .ok());
  serve::StoreOptions sopts;
  sopts.placement_override = serve::StorePlacement::kSharded;
  sopts.page_rows = page_rows;
  const Status reg = server.RegisterStore("kv", store_rows, dim, sopts);
  DW_CHECK(reg.ok()) << reg.ToString();
  server.Publish("kv", weights);
  server.PublishStore("kv", table);  // identity keys 0..rows-1
  const Status st = server.Start();
  DW_CHECK(st.ok()) << st.ToString();

  const int kProducers = 4;
  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<double>> futures;
      futures.reserve(total_rows / kProducers + 1);
      for (int r = p; r < total_rows; r += kProducers) {
        const Index row = static_cast<Index>(r) % store_rows;
        for (;;) {
          auto fut = by_key
                         ? server.ScoreKey("kv", static_cast<uint64_t>(row))
                         : server.Score("kv", row);
          if (fut.ok()) {
            futures.push_back(std::move(fut).value());
            break;
          }
          DW_CHECK(fut.status().code() == Status::Code::kResourceExhausted)
              << fut.status().ToString();
          std::this_thread::yield();
        }
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  const double wall = timer.Seconds();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  DW_CHECK_EQ(stats.requests, static_cast<uint64_t>(total_rows));
  DeltaModeRun out;
  out.mode = by_key ? "by_key" : "by_id";
  out.rows_per_sec = total_rows / wall;
  out.p50_ms = stats.p50_latency_ms;
  out.p99_ms = stats.p99_latency_ms;
  return out;
}

/// The churn sweep: a full table published once, then one delta per
/// churn fraction overwriting a CONTIGUOUS rotating key window (update
/// feeds arrive clustered; slots are insertion-ordered, so a window maps
/// to O(churn / page_rows) pages -- random scatter would touch most
/// pages and is bench_key_index's subject, not this gate's).
std::vector<DeltaChurnPoint> RunDeltaChurnSweep(const numa::Topology& topo,
                                                Index store_rows, Index dim,
                                                Index page_rows) {
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  serve::StoreOptions sopts;
  sopts.placement_override = serve::StorePlacement::kSharded;
  sopts.page_rows = page_rows;
  serve::FeatureStore store("sweep", alloc, store_rows, dim, sopts);
  store.Publish(std::vector<double>(
      static_cast<size_t>(store_rows) * dim, 1.0));

  std::vector<DeltaChurnPoint> sweep;
  uint64_t window_start = 0;
  for (const double churn : {0.001, 0.01, 0.1, 1.0}) {
    const size_t n = std::max<size_t>(
        1, static_cast<size_t>(churn * store_rows));
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = (window_start + i) % store_rows;
    }
    window_start = (window_start + n) % store_rows;
    const std::vector<double> block(n * static_cast<size_t>(dim), 2.0);
    WallTimer timer;
    const serve::StorePublishReport rep = store.PublishDelta(keys, block);
    DeltaChurnPoint pt;
    pt.churn = churn;
    pt.keys = n;
    pt.delta_bytes = rep.delta_bytes;
    pt.full_bytes = rep.full_bytes;
    pt.ratio = rep.full_bytes > 0
                   ? static_cast<double>(rep.delta_bytes) / rep.full_bytes
                   : 0.0;
    pt.publish_ms = timer.Seconds() * 1e3;
    sweep.push_back(pt);
  }
  return sweep;
}

// --- experiment 6: cost-aware admission + per-client fair queuing ---------

struct AdmissionClientResult {
  std::string name;
  bool hog = false;
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  double p50_ms = 0.0;  ///< client-side sync latency (mice only)
  double p99_ms = 0.0;
};

struct AdmissionRun {
  std::string mode;  ///< "fifo" | "fair"
  std::vector<AdmissionClientResult> clients;
  double mice_p99_ms = 0.0;           ///< worst mouse p99
  double mice_served_fraction = 0.0;  ///< accepted/submitted over all mice
  double hog_served_fraction = 0.0;
  uint64_t rejected_cost = 0;  ///< delay-budget refusals (family total)
  serve::FamilyServingStats fam;
};

/// One overload run: `n_hogs` unthrottled hog threads flood a one-worker
/// engine with id-keyed requests (payload = one integer, so the flood
/// outruns the drain by construction) while `n_mice` mice each send one
/// synchronous id-keyed request every `mice_interval_us`, measuring
/// latency client-side. `fair` toggles DRR fair queuing against the
/// FIFO baseline; everything else is identical, so the mice's p99 and
/// served fraction isolate what fair queuing buys under a hog.
AdmissionRun RunAdmissionOverload(const std::vector<double>& table,
                                  Index store_rows, Index dim,
                                  const models::ModelSpec& spec,
                                  const std::vector<double>& weights,
                                  const numa::Topology& topo, bool fair,
                                  double duration_sec, double budget_ms,
                                  int n_hogs, int n_mice,
                                  int mice_interval_us) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.num_threads = 1;  // deliberately under-provisioned: overload
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  opts.batch.fair_queuing = fair;
  // The hard cap stays generous; the DELAY BUDGET is the admission bound
  // under test (the controller converts it into a backlog bound at its
  // calibrated per-row estimate).
  opts.batch.max_queue_rows = 1 << 13;
  opts.batch.queue_delay_budget = std::chrono::microseconds(
      static_cast<int64_t>(budget_ms * 1000.0));
  serve::ServingEngine server(opts);
  serve::ServingFamilyOptions fam =
      PinnedFamily(dim, serve::Replication::kPerNode);
  fam.client_weights.push_back({serve::ClientId("hog"), 1.0});
  for (int m = 0; m < n_mice; ++m) {
    fam.client_weights.push_back(
        {serve::ClientId("mouse-" + std::to_string(m)), 1.0});
  }
  DW_CHECK(server.RegisterFamily("adm", &spec, fam).ok());
  DW_CHECK(server.RegisterStore("adm", store_rows, dim).ok());
  server.Publish("adm", weights);
  server.PublishStore("adm", table);
  DW_CHECK(server.Start().ok());

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(duration_sec));

  std::vector<std::atomic<uint64_t>> hog_submitted(n_hogs);
  std::vector<std::atomic<uint64_t>> hog_rejected(n_hogs);
  std::vector<std::thread> hogs;
  hogs.reserve(n_hogs);
  for (int h = 0; h < n_hogs; ++h) {
    hogs.emplace_back([&, h] {
      const serve::ClientId me("hog");
      std::vector<std::future<double>> futures;
      futures.reserve(4096);
      Index row = static_cast<Index>(h);
      uint64_t submitted = 0;
      uint64_t rejected = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        auto fut = server.Score("adm", row++ % store_rows, me);
        ++submitted;
        if (fut.ok()) {
          futures.push_back(std::move(fut).value());
          if (futures.size() >= 4096) {
            for (auto& f : futures) f.get();
            futures.clear();
          }
        } else {
          DW_CHECK(fut.status().code() == Status::Code::kResourceExhausted)
              << fut.status().ToString();
          ++rejected;
          std::this_thread::yield();
        }
      }
      for (auto& f : futures) f.get();
      hog_submitted[h].store(submitted);
      hog_rejected[h].store(rejected);
    });
  }

  struct MouseResult {
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<MouseResult> mouse_results(n_mice);
  std::vector<std::thread> mice;
  mice.reserve(n_mice);
  for (int m = 0; m < n_mice; ++m) {
    mice.emplace_back([&, m] {
      const serve::ClientId me("mouse-" + std::to_string(m));
      MouseResult& res = mouse_results[m];
      Index row = static_cast<Index>(m * 37);
      while (std::chrono::steady_clock::now() < deadline) {
        WallTimer timer;
        ++res.submitted;
        auto s = server.ScoreSync("adm", row++ % store_rows, me);
        if (s.ok()) {
          res.latencies_ms.push_back(timer.Seconds() * 1e3);
        } else {
          DW_CHECK(s.status().code() == Status::Code::kResourceExhausted)
              << s.status().ToString();
          ++res.rejected;
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(mice_interval_us));
      }
    });
  }
  for (auto& t : hogs) t.join();
  for (auto& t : mice) t.join();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  AdmissionRun out;
  out.mode = fair ? "fair" : "fifo";
  out.fam = stats.families[0];
  AdmissionClientResult hog;
  hog.name = "hog";
  hog.hog = true;
  for (int h = 0; h < n_hogs; ++h) {
    hog.submitted += hog_submitted[h].load();
    hog.rejected += hog_rejected[h].load();
  }
  hog.accepted = hog.submitted - hog.rejected;
  out.hog_served_fraction =
      hog.submitted > 0
          ? static_cast<double>(hog.accepted) / hog.submitted
          : 0.0;
  out.clients.push_back(hog);
  uint64_t mice_submitted = 0;
  uint64_t mice_accepted = 0;
  for (int m = 0; m < n_mice; ++m) {
    const MouseResult& res = mouse_results[m];
    AdmissionClientResult c;
    c.name = "mouse-" + std::to_string(m);
    c.submitted = res.submitted;
    c.rejected = res.rejected;
    c.accepted = res.submitted - res.rejected;
    // A mouse starved of EVERY request has no latency sample;
    // Percentile() would report 0 and invert the fair-vs-FIFO gate
    // exactly when FIFO is at its worst, so total starvation counts as
    // the whole window instead.
    if (res.latencies_ms.empty()) {
      c.p50_ms = c.p99_ms = duration_sec * 1e3;
    } else {
      c.p50_ms = Percentile(res.latencies_ms, 50.0);
      c.p99_ms = Percentile(res.latencies_ms, 99.0);
    }
    out.mice_p99_ms = std::max(out.mice_p99_ms, c.p99_ms);
    mice_submitted += c.submitted;
    mice_accepted += c.accepted;
    out.clients.push_back(std::move(c));
  }
  out.mice_served_fraction =
      mice_submitted > 0
          ? static_cast<double>(mice_accepted) / mice_submitted
          : 0.0;
  out.rejected_cost = out.fam.rejected_cost;
  return out;
}

// --- experiment 7: telemetry overhead + stage decomposition ---------------

// What the telemetry-ON trial yields beyond throughput: the registry-backed
// stats (stage means), the exact mean end-to-end latency, the trace ring
// counter, and the exporter's render stats -- everything the JSON artifact's
// `telemetry` section reports.
struct TelemetryTrialExtras {
  serve::ServingStats stats;
  double e2e_mean_us = 0.0;  ///< exact mean of serve.latency_ms, in us
  uint64_t spans_recorded = 0;
  uint64_t registry_metrics = 0;
  obs::TelemetryExporter::Stats exporter;
};

// One closed-loop scoring run with telemetry on or off; returns measured
// rows/sec. Mirrors RunServing's producer loop but scores BATCHED -- the
// production hot path the overhead gate protects (scalar mode's per-row
// replica re-gather would drown instrument cost in memory traffic). The
// telemetry-on trial also runs a live obs::TelemetryExporter so the
// measured overhead includes periodic snapshot+render, not just the
// inline fetch_adds. NOTE: with telemetry off every registry-backed
// Stats() field reads zero by contract, so this function never asserts
// on stats counters -- completion is proven by the futures themselves.
double RunTelemetryTrial(const data::Dataset& d, const models::ModelSpec& spec,
                         const std::vector<double>& weights,
                         const numa::Topology& topo, bool telemetry,
                         int threads, int total_rows,
                         TelemetryTrialExtras* extras) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.num_threads = threads;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  opts.scoring = serve::ScoringMode::kBatched;
  opts.telemetry = telemetry;
  serve::ServingEngine server(opts);
  const Status reg = server.RegisterFamily(
      "lr", &spec, PinnedFamily(static_cast<Index>(weights.size()),
                                serve::Replication::kPerNode));
  DW_CHECK(reg.ok()) << reg.ToString();
  server.Publish("lr", weights);
  const Status st = server.Start();
  DW_CHECK(st.ok()) << st.ToString();

  std::unique_ptr<obs::TelemetryExporter> exporter;
  if (telemetry) {
    obs::TelemetryExporter::Options eopts;
    eopts.period = std::chrono::milliseconds(25);
    exporter = std::make_unique<obs::TelemetryExporter>(&server.telemetry(),
                                                        eopts);
    exporter->Start();
  }

  const int kProducers = 4;
  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<double>> futures;
      futures.reserve(total_rows / kProducers + 1);
      std::vector<Index> idx;
      std::vector<double> vals;
      for (int r = p; r < total_rows; r += kProducers) {
        const auto row = d.a.Row(static_cast<Index>(r % d.a.rows()));
        idx.assign(row.indices, row.indices + row.nnz);
        vals.assign(row.values, row.values + row.nnz);
        for (;;) {
          auto fut = server.Score("lr", idx, vals);
          if (fut.ok()) {
            futures.push_back(std::move(fut).value());
            break;
          }
          DW_CHECK(fut.status().code() ==
                   Status::Code::kResourceExhausted)
              << fut.status().ToString();
          std::this_thread::yield();
        }
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  const double wall = timer.Seconds();
  if (exporter != nullptr) exporter->Stop();
  server.Stop();

  if (extras != nullptr) {
    extras->stats = server.Stats();
    DW_CHECK_EQ(extras->stats.requests, static_cast<uint64_t>(total_rows));
    // Histogram means are exact (bucketing only bounds the percentiles),
    // so this is the true mean submit-to-resolution latency.
    extras->e2e_mean_us = server.telemetry()
                              .GetHistogram("serve.latency_ms",
                                            {{"family", "lr"}})
                              ->Snapshot()
                              .Mean() *
                          1e3;
    extras->spans_recorded = server.spans().recorded();
    extras->registry_metrics = server.telemetry().size();
    if (exporter != nullptr) extras->exporter = exporter->stats();
  }
  return total_rows / wall;
}

// --- experiment 9: live placement tuning under a traffic shift ----------

struct TunerBenchResult {
  // Observed control-loop activity.
  uint64_t scans = 0;
  uint64_t flips = 0;
  uint64_t period_adjustments = 0;
  std::vector<opt::TunerDecision> decisions;
  std::string model_replication;   ///< final strategy after tuning
  std::string store_placement;     ///< final strategy after tuning
  // Request-level integrity across every migration.
  uint64_t served = 0;
  uint64_t failed = 0;  ///< non-backpressure refusals + torn margins
  // Throughput, rows/sec.
  double phase_a_rows_per_sec = 0.0;     ///< publish-heavy, pre-shift
  double post_flip_rows_per_sec = 0.0;   ///< read-heavy, after migration
  double static_optimal_rows_per_sec = 0.0;  ///< pinned-optimal baseline
  double recovery = 0.0;  ///< post_flip / static_optimal
  // Gates.
  bool flip_ok = false;
  bool zero_failed = false;
  bool recovered = false;
  double min_recovery = 0.0;
};

/// One id-keyed flood against `server` run by background producers until
/// *stop; margins are verified exactly (weights 1.0, row r = all (r+1),
/// so every score is the integer dim*(r+1) under ANY placement). Rows
/// and integrity failures accumulate into the shared counters.
void TunerFloodProducers(serve::ServingEngine& server,
                         const std::string& family, Index store_rows,
                         Index dim, int threads, std::atomic<bool>* stop,
                         std::atomic<uint64_t>* rows,
                         std::atomic<uint64_t>* failed,
                         std::vector<std::thread>* out) {
  for (int p = 0; p < threads; ++p) {
    out->emplace_back([=, &server] {
      Index i = static_cast<Index>(p);
      std::vector<std::pair<Index, std::future<double>>> inflight;
      inflight.reserve(64);
      while (!stop->load(std::memory_order_acquire)) {
        inflight.clear();
        for (int k = 0; k < 64; ++k) {
          const Index row = i % store_rows;
          i += threads;
          auto s = server.Score(family, row);
          if (!s.ok()) {
            if (s.status().code() != Status::Code::kResourceExhausted) {
              failed->fetch_add(1, std::memory_order_relaxed);
            }
            std::this_thread::yield();
            continue;
          }
          inflight.emplace_back(row, std::move(s).value());
        }
        for (auto& [row, fut] : inflight) {
          const double want = static_cast<double>(dim) * (row + 1);
          if (fut.get() != want) {
            failed->fetch_add(1, std::memory_order_relaxed);
          } else {
            rows->fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
}

/// The ISSUE's acceptance experiment: a family + store registered under
/// a publish-heavy assumption (kPerMachine model, kSharded store) serve
/// a workload that SHIFTS mid-run to read-heavy. Phase A republishes the
/// model every few ms, so the frozen choices are right; phase B stops
/// republishing and floods gathers, so they are wrong. The tuner's scans
/// must observe the shift, flip at least one placement, tear zero
/// requests doing it, and land post-flip throughput within
/// `min_recovery` of a statically-optimal (kPerNode + kReplicated) run
/// of the same flood.
TunerBenchResult RunTunerShift(const numa::Topology& topo, double phase_sec,
                               double min_recovery) {
  models::SvmSpec svm;
  const Index dim = 256;
  const Index store_rows = 1024;
  const int producers = 6;
  std::vector<double> weights(dim, 1.0);
  std::vector<double> table(static_cast<size_t>(store_rows) * dim);
  for (Index r = 0; r < store_rows; ++r) {
    for (Index c = 0; c < dim; ++c) {
      table[static_cast<size_t>(r) * dim + c] = static_cast<double>(r + 1);
    }
  }

  serve::ServingOptions opts;
  opts.topology = topo;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);

  TunerBenchResult res;
  res.min_recovery = min_recovery;

  {
    serve::ServingEngine server(opts);
    DW_CHECK(server
                 .RegisterFamily("tuned", &svm,
                                 PinnedFamily(dim,
                                              serve::Replication::kPerMachine))
                 .ok());
    serve::StoreOptions sopts;
    sopts.placement_override = serve::StorePlacement::kSharded;
    DW_CHECK(server.RegisterStore("tuned", store_rows, dim, sopts).ok());
    server.PublishStore("tuned", table);
    server.Publish("tuned", weights);
    DW_CHECK(server.Start().ok());

    opt::TunerOptions topts;
    topts.scan_period = std::chrono::milliseconds(0);  // bench drives scans
    topts.min_advantage = 1.05;
    topts.confirm_scans = 2;
    topts.min_observed_rows = 512;
    opt::PlacementTuner* tuner = server.EnableTuner(topts);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> failed{0};
    std::vector<std::thread> flood;
    TunerFloodProducers(server, "tuned", store_rows, dim, producers, &stop,
                        &rows, &failed, &flood);

    // Phase A: publish-heavy. A republisher refreshes the model every
    // 500us and the table every 5ms (same bytes, new versions), keeping
    // observed reads-per-publish low enough that the incumbent
    // kPerMachine/kSharded choices stay right and the scans record no
    // decisions.
    std::atomic<bool> stop_republish{false};
    std::thread republisher([&] {
      int tick = 0;
      while (!stop_republish.load(std::memory_order_acquire)) {
        server.Publish("tuned", weights);
        if (++tick % 5 == 0) server.PublishStore("tuned", table);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
    const uint64_t rows_a0 = rows.load();
    WallTimer phase_a;
    while (phase_a.Seconds() < phase_sec) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      tuner->ScanOnce();
    }
    res.phase_a_rows_per_sec =
        (rows.load() - rows_a0) / phase_a.Seconds();

    // Phase B: the shift. Republishing stops, the flood keeps reading:
    // observed reads-per-publish explodes and the scans must migrate.
    stop_republish.store(true, std::memory_order_release);
    republisher.join();
    WallTimer phase_b;
    while (tuner->flips() < 2 && phase_b.Seconds() < 4.0 * phase_sec) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      tuner->ScanOnce();
    }

    // Post-flip window: steady-state throughput under the migrated
    // placement.
    const uint64_t rows_b0 = rows.load();
    WallTimer post;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(phase_sec * 1e3)));
    res.post_flip_rows_per_sec = (rows.load() - rows_b0) / post.Seconds();

    stop.store(true, std::memory_order_release);
    for (auto& t : flood) t.join();
    server.Stop();

    res.scans = tuner->scans();
    res.flips = tuner->flips();
    res.period_adjustments = tuner->period_adjustments();
    res.decisions = tuner->Decisions();
    res.model_replication =
        ToString(server.registry().FindFamily("tuned")->replication());
    res.store_placement = ToString(server.FindStore("tuned")->placement());
    res.served = rows.load();
    res.failed = failed.load();
  }

  // Statically-optimal baseline: the read-heavy phase's right answer
  // (kPerNode + kReplicated) pinned from the start, same flood, same
  // window -- what an oracle that knew the shift in advance would serve.
  {
    serve::ServingEngine server(opts);
    DW_CHECK(server
                 .RegisterFamily("tuned", &svm,
                                 PinnedFamily(dim,
                                              serve::Replication::kPerNode))
                 .ok());
    serve::StoreOptions sopts;
    sopts.placement_override = serve::StorePlacement::kReplicated;
    DW_CHECK(server.RegisterStore("tuned", store_rows, dim, sopts).ok());
    server.PublishStore("tuned", table);
    server.Publish("tuned", weights);
    DW_CHECK(server.Start().ok());

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> failed{0};
    std::vector<std::thread> flood;
    TunerFloodProducers(server, "tuned", store_rows, dim, producers, &stop,
                        &rows, &failed, &flood);
    // Matching warmup before the measured window.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(phase_sec * 500)));
    const uint64_t rows0 = rows.load();
    WallTimer window;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(phase_sec * 1e3)));
    res.static_optimal_rows_per_sec =
        (rows.load() - rows0) / window.Seconds();
    stop.store(true, std::memory_order_release);
    for (auto& t : flood) t.join();
    server.Stop();
    res.failed += failed.load();
  }

  res.recovery = res.static_optimal_rows_per_sec > 0.0
                     ? res.post_flip_rows_per_sec /
                           res.static_optimal_rows_per_sec
                     : 0.0;
  res.flip_ok = res.flips >= 1;
  res.zero_failed = res.failed == 0;
  res.recovered = res.recovery >= min_recovery;
  return res;
}

}  // namespace
}  // namespace dw

int main(int argc, char** argv) {
  using namespace dw;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::string topo_name = [] {
    const char* v = std::getenv("DW_BENCH_TOPO");
    return std::string(v != nullptr ? v : "local2");
  }();
  auto topo_or = numa::TopologyByName(topo_name);
  DW_CHECK(topo_or.ok()) << topo_or.status().ToString();
  const numa::Topology topo = topo_or.value();
  const int total_rows =
      smoke ? 2000 : bench::EnvInt("DW_BENCH_SERVE_ROWS", 20000);

  const data::Dataset dataset = bench::BenchRcv1();
  models::LogisticSpec lr;
  std::printf("dataset %s: %u rows, %u features; topology %s (%d nodes)%s\n",
              dataset.name.c_str(), dataset.a.rows(), dataset.a.cols(),
              topo.name.c_str(), topo.num_nodes, smoke ? " [smoke]" : "");

  // Train briefly: serving quality is not under test, the scoring path is.
  engine::EngineOptions train_opts =
      bench::MakeOptions(topo, engine::AccessMethod::kRowWise,
                         engine::ModelReplication::kPerNode,
                         engine::DataReplication::kSharding);
  engine::Engine trainer(&dataset, &lr, train_opts);
  DW_CHECK(trainer.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = smoke ? 2 : 5;
  trainer.Run(cfg);
  const engine::ModelExport exported = trainer.Export();

  // --- experiment 1: replication x threads (scalar scoring; see the
  // rationale in RunServing) ----------------------------------------------
  const std::vector<int> thread_counts = {1, topo.total_cores() / 2,
                                          topo.total_cores()};
  const std::vector<serve::Replication> strategies = {
      serve::Replication::kPerNode, serve::Replication::kPerMachine};

  Table table("Serving throughput (" + std::to_string(total_rows) +
              " requests, batch<=64, " + topo.name + ")");
  table.SetHeader({"replication", "threads", "measured rows/s", "model rows/s",
                   "p50 ms", "p99 ms", "remote MB"});
  std::vector<ServeRun> runs;
  double per_node_max = 0.0;
  double per_machine_max = 0.0;
  for (const serve::Replication rep : strategies) {
    for (const int threads : thread_counts) {
      const ServeRun r = RunServing(dataset, lr, exported.weights, topo, rep,
                                    threads, total_rows);
      runs.push_back(r);
      table.AddRow({r.replication, std::to_string(threads),
                    Table::Num(r.measured_rows_per_sec, 0),
                    Table::Num(r.sim_rows_per_sec, 0), Table::Num(r.p50_ms, 3),
                    Table::Num(r.p99_ms, 3), Table::Num(r.remote_mb, 1)});
      if (threads == topo.total_cores()) {
        if (rep == serve::Replication::kPerNode) {
          per_node_max = r.sim_rows_per_sec;
        } else {
          per_machine_max = r.sim_rows_per_sec;
        }
      }
    }
  }
  table.Print();
  std::printf(
      "\nmax-thread model throughput: PerNode %.0f rows/s vs PerMachine "
      "%.0f rows/s (%s)\n",
      per_node_max, per_machine_max,
      per_node_max >= per_machine_max ? "PerNode >= PerMachine, as predicted"
                                      : "UNEXPECTED: PerMachine ahead");

  // --- experiment 2: batched vs scalar kernels ---------------------------
  const int dense_rows =
      smoke ? 256 : bench::EnvInt("DW_BENCH_DENSE_ROWS", 1024);
  const int dense_dim =
      smoke ? 512 : bench::EnvInt("DW_BENCH_DENSE_DIM", 4096);
  const double min_speedup = bench::EnvDouble("DW_BENCH_MIN_SPEEDUP", 1.5);
  if (smoke) setenv("DW_BENCH_KERNEL_SEC", "0.05", /*overwrite=*/0);
  const KernelCompare kc =
      CompareKernels(dense_rows, dense_dim, topo.total_cores());
  Table ktable("PredictBatch vs Predict (dense " +
               std::to_string(dense_rows) + " x " + std::to_string(dense_dim) +
               ", " + std::to_string(kc.threads) + " threads)");
  ktable.SetHeader({"kernel", "rows/s", "speedup"});
  ktable.AddRow({"scalar Predict", Table::Num(kc.scalar_rows_per_sec, 0),
                 "1.00x"});
  ktable.AddRow({"PredictBatch", Table::Num(kc.batched_rows_per_sec, 0),
                 Table::Num(kc.speedup, 2) + "x"});
  ktable.Print();
  std::printf("\nbatched/scalar speedup: %.2fx (gate: >= %.2fx)\n", kc.speedup,
              min_speedup);

  // --- experiment 3: closed-loop SLO search ------------------------------
  const double slo_p99_ms = bench::EnvDouble("DW_BENCH_SLO_P99_MS", 2.0);
  const int slo_iters = smoke ? 1 : bench::EnvInt("DW_BENCH_SLO_TRIALS", 5);
  const double slo_trial_sec =
      smoke ? 0.1 : bench::EnvDouble("DW_BENCH_SLO_TRIAL_SEC", 0.4);
  const SloResult slo = SearchMaxRateUnderSlo(
      dataset, lr, exported.weights, topo, slo_p99_ms, slo_iters,
      slo_trial_sec, std::max(2000, total_rows / 2));
  Table stable("Closed-loop SLO search (p99 <= " +
               Table::Num(slo_p99_ms, 1) + " ms, " + topo.name + ")");
  stable.SetHeader({"offered rows/s", "achieved rows/s", "p50 ms", "p99 ms",
                    "max ms", "meets SLO"});
  for (const SloTrial& t : slo.trials) {
    stable.AddRow({t.offered_rows_per_sec > 0.0
                       ? Table::Num(t.offered_rows_per_sec, 0)
                       : "unthrottled",
                   Table::Num(t.achieved_rows_per_sec, 0),
                   Table::Num(t.p50_ms, 3), Table::Num(t.p99_ms, 3),
                   Table::Num(t.max_ms, 3), t.meets_slo ? "yes" : "no"});
  }
  stable.Print();
  std::printf("\nmax rows/s under p99 <= %.1f ms: %.0f (unthrottled %.0f)\n",
              slo_p99_ms, slo.max_rows_per_sec_under_slo,
              slo.unthrottled_rows_per_sec);

  // --- experiment 4: live multi-family serving with async refresh --------
  const double stale_sec =
      smoke ? 0.3 : bench::EnvDouble("DW_BENCH_STALE_SEC", 1.0);
  const std::vector<FamilyRun> families = RunLiveServing(
      dataset, topo, stale_sec, /*wide_period_ms=*/20.0,
      /*narrow_period_ms=*/2.0);
  Table ftable("Live training->serving (" + Table::Num(stale_sec, 1) +
               " s window, exporter-refreshed, " + topo.name + ")");
  ftable.SetHeader({"family", "replication", "rows/s", "p50 ms", "p99 ms",
                    "rejected", "stale ms (mean/max)", "vers behind (mean/max)",
                    "publishes"});
  for (const FamilyRun& f : families) {
    const serve::FamilyServingStats& s = f.stats;
    ftable.AddRow(
        {s.family, ToString(s.replication), Table::Num(s.rows_per_sec, 0),
         Table::Num(s.p50_latency_ms, 3), Table::Num(s.p99_latency_ms, 3),
         std::to_string(s.rejected),
         Table::Num(s.mean_staleness_ms, 2) + "/" +
             Table::Num(s.max_staleness_ms, 2),
         Table::Num(s.mean_versions_behind, 2) + "/" +
             std::to_string(s.max_versions_behind),
         std::to_string(f.exporter.publishes)});
  }
  ftable.Print();
  for (const FamilyRun& f : families) {
    std::printf("%s chose %s: %s\n", f.stats.family.c_str(),
                ToString(f.stats.replication), f.rationale.c_str());
  }

  // --- experiment 5: collocated fetch vs request-carried features --------
  const int store_rows =
      smoke ? 512 : bench::EnvInt("DW_BENCH_STORE_ROWS", 4096);
  const int store_dim =
      smoke ? 256 : bench::EnvInt("DW_BENCH_STORE_DIM", 2048);
  std::vector<double> store_table(static_cast<size_t>(store_rows) *
                                  store_dim);
  {
    Rng rng(41);
    for (auto& v : store_table) v = rng.Gaussian(0.0, 1.0);
  }
  std::vector<double> store_weights(store_dim);
  {
    Rng rng(43);
    for (auto& w : store_weights) w = rng.Gaussian(0.0, 1.0);
  }
  const std::vector<std::string> store_modes = {"id-replicated", "id-sharded",
                                                "carried"};
  std::vector<StoreRun> store_runs;
  Table srtable("Feature fetch: collocated store vs request-carried (" +
                std::to_string(total_rows) + " requests, dense " +
                std::to_string(store_rows) + " x " +
                std::to_string(store_dim) + ", " + topo.name + ")");
  srtable.SetHeader({"mode", "placement", "measured rows/s", "model rows/s",
                     "p50 ms", "p99 ms", "local MB", "remote MB"});
  for (const std::string& mode : store_modes) {
    const StoreRun r = RunStoreServing(
        store_table, static_cast<Index>(store_rows),
        static_cast<Index>(store_dim), lr, store_weights, topo, mode,
        topo.total_cores(), total_rows);
    srtable.AddRow({r.mode, r.placement,
                    Table::Num(r.measured_rows_per_sec, 0),
                    Table::Num(r.sim_rows_per_sec, 0), Table::Num(r.p50_ms, 3),
                    Table::Num(r.p99_ms, 3),
                    Table::Num(r.local_feature_mb, 1),
                    Table::Num(r.remote_feature_mb, 1)});
    store_runs.push_back(std::move(r));
  }
  srtable.Print();
  const double collocated_sim = store_runs[0].sim_rows_per_sec;
  const double sharded_sim = store_runs[1].sim_rows_per_sec;
  std::printf(
      "\nmodel throughput, collocated (replicated) %.0f rows/s vs sharded "
      "%.0f rows/s (%s)\n",
      collocated_sim, sharded_sim,
      collocated_sim >= sharded_sim
          ? "collocated >= sharded, as predicted"
          : "UNEXPECTED: sharded ahead");

  // --- experiment 6: cost-aware admission + per-client fair queuing ------
  const double adm_sec =
      smoke ? 0.25 : bench::EnvDouble("DW_BENCH_ADM_SEC", 1.0);
  const int adm_dim = smoke ? 1024 : bench::EnvInt("DW_BENCH_ADM_DIM", 4096);
  const double adm_budget_ms = bench::EnvDouble("DW_BENCH_ADM_BUDGET_MS", 4.0);
  const int adm_store_rows = 1024;
  const int adm_hogs = 2;
  const int adm_mice = 3;
  const int adm_mice_interval_us = 300;
  std::vector<double> adm_table(static_cast<size_t>(adm_store_rows) *
                                adm_dim);
  {
    Rng rng(59);
    for (auto& v : adm_table) v = rng.Gaussian(0.0, 1.0);
  }
  std::vector<double> adm_weights(adm_dim);
  {
    Rng rng(61);
    for (auto& w : adm_weights) w = rng.Gaussian(0.0, 0.5);
  }
  std::vector<AdmissionRun> adm_runs;
  for (const bool fair : {false, true}) {
    adm_runs.push_back(RunAdmissionOverload(
        adm_table, static_cast<Index>(adm_store_rows),
        static_cast<Index>(adm_dim), lr, adm_weights, topo, fair, adm_sec,
        adm_budget_ms, adm_hogs, adm_mice, adm_mice_interval_us));
  }
  const AdmissionRun& adm_fifo = adm_runs[0];
  const AdmissionRun& adm_fair = adm_runs[1];
  Table atable("Admission under overload (" + std::to_string(adm_hogs) +
               " hogs vs " + std::to_string(adm_mice) + " mice, dim " +
               std::to_string(adm_dim) + ", budget " +
               Table::Num(adm_budget_ms, 1) + " ms, " +
               Table::Num(adm_sec, 2) + " s, " + topo.name + ")");
  atable.SetHeader({"mode", "client", "submitted", "served frac", "p50 ms",
                    "p99 ms"});
  for (const AdmissionRun& run : adm_runs) {
    for (const AdmissionClientResult& c : run.clients) {
      const double frac =
          c.submitted > 0
              ? static_cast<double>(c.accepted) / c.submitted
              : 0.0;
      atable.AddRow({run.mode, c.name, std::to_string(c.submitted),
                     Table::Num(frac, 3),
                     c.hog ? "-" : Table::Num(c.p50_ms, 3),
                     c.hog ? "-" : Table::Num(c.p99_ms, 3)});
    }
  }
  atable.Print();
  // Estimate convergence from the FAIR run (both runs feed the same kind
  // of controller; one suffices for the gate).
  const serve::FamilyServingStats& adm_fam = adm_fair.fam;
  const double est_over_measured =
      adm_fam.measured_row_us_ewma > 0.0
          ? adm_fam.est_row_us / adm_fam.measured_row_us_ewma
          : 0.0;
  const bool adm_converged =
      est_over_measured >= 0.5 && est_over_measured <= 2.0;
  const bool adm_fair_beats_fifo =
      adm_fair.mice_p99_ms < adm_fifo.mice_p99_ms &&
      adm_fair.mice_served_fraction > adm_fifo.mice_served_fraction;
  std::printf(
      "\nmice under overload: p99 %.3f ms (fair) vs %.3f ms (fifo), served "
      "fraction %.3f (fair) vs %.3f (fifo) -- %s\n",
      adm_fair.mice_p99_ms, adm_fifo.mice_p99_ms,
      adm_fair.mice_served_fraction, adm_fifo.mice_served_fraction,
      adm_fair_beats_fifo ? "fair queuing protects the mice"
                          : "UNEXPECTED: fifo no worse");
  std::printf(
      "admission estimate: prior %.2f us/row, calibrated %.2f us/row, "
      "measured EWMA %.2f us/row over %llu batches (est/measured %.2f, %s)\n",
      adm_fam.prior_row_us, adm_fam.est_row_us, adm_fam.measured_row_us_ewma,
      static_cast<unsigned long long>(adm_fam.cost_reports),
      est_over_measured, adm_converged ? "converged" : "NOT converged");

  // --- experiment 7: telemetry overhead + stage decomposition ------------
  const int tel_trials = smoke ? 3 : bench::EnvInt("DW_BENCH_TEL_TRIALS", 3);
  const int tel_rows = total_rows;
  // Smoke trials are milliseconds long on a shared runner whose noise
  // floor is well above the dedicated-host gate, so the smoke default is
  // calibrated to catch order-of-magnitude instrument regressions while
  // staying assertable in CI; full runs keep the 3% contract.
  const double tel_max_overhead =
      bench::EnvDouble("DW_BENCH_TEL_MAX_OVERHEAD", smoke ? 0.25 : 0.03);
  TelemetryTrialExtras tel;
  std::vector<double> tel_off_runs;
  std::vector<double> tel_on_runs;
  for (int t = 0; t < tel_trials; ++t) {
    // Interleave off/on so machine drift (thermal, noisy neighbors)
    // hits both sides of the comparison equally.
    tel_off_runs.push_back(RunTelemetryTrial(dataset, lr, exported.weights,
                                             topo, /*telemetry=*/false,
                                             topo.total_cores(), tel_rows,
                                             nullptr));
    tel_on_runs.push_back(RunTelemetryTrial(dataset, lr, exported.weights,
                                            topo, /*telemetry=*/true,
                                            topo.total_cores(), tel_rows,
                                            &tel));
  }
  // Best-of-k over PAIR ratios: the off/on runs of pair t ran back to
  // back, so their ratio shares one noise window and cancels drift; the
  // best pair is the least-perturbed paired comparison of the k, which
  // is the right bound for a <=-gate on a noisy host. This is what
  // un-flaked the gate: the old smoke config took each side's best-of
  // INDEPENDENTLY over a single pair, so one cold-cache or noisy-
  // neighbor off-trial read as telemetry "overhead" (or hid it). All k
  // ratios and their median land in the JSON artifact as the drift
  // diagnostic.
  std::vector<double> tel_pair_ratios;
  for (int t = 0; t < tel_trials; ++t) {
    tel_pair_ratios.push_back(
        tel_off_runs[t] > 0.0 ? tel_on_runs[t] / tel_off_runs[t] : 1.0);
  }
  std::vector<double> tel_sorted_ratios = tel_pair_ratios;
  std::sort(tel_sorted_ratios.begin(), tel_sorted_ratios.end());
  const double tel_median_ratio =
      tel_sorted_ratios.size() % 2 == 1
          ? tel_sorted_ratios[tel_sorted_ratios.size() / 2]
          : 0.5 * (tel_sorted_ratios[tel_sorted_ratios.size() / 2 - 1] +
                   tel_sorted_ratios[tel_sorted_ratios.size() / 2]);
  const double tel_best_pair_ratio = tel_sorted_ratios.back();
  const double tel_off_best =
      *std::max_element(tel_off_runs.begin(), tel_off_runs.end());
  const double tel_on_best =
      *std::max_element(tel_on_runs.begin(), tel_on_runs.end());
  const double tel_overhead = 1.0 - tel_best_pair_ratio;
  const bool tel_overhead_ok = tel_overhead <= tel_max_overhead;

  // Stage decomposition: the per-stage means (queue..complete) must sum
  // to the measured mean end-to-end latency. The admit stage is excluded
  // because serve.latency_ms starts its clock at enqueue, after admission;
  // the sum lands slightly OVER the mean because the complete stage runs
  // to the batch's last resolution while each row's latency stops at its
  // own. A big gap either way means a stage boundary drifted from what
  // the latency histogram measures -- that is the regression this guards.
  const serve::FamilyServingStats& tel_fam = tel.stats.families[0];
  double tel_stage_sum_us = 0.0;
  for (int s = static_cast<int>(obs::Stage::kQueue); s < obs::kNumStages;
       ++s) {
    tel_stage_sum_us += tel_fam.mean_stage_us[s];
  }
  const double tel_decomp_ratio =
      tel.e2e_mean_us > 0.0 ? tel_stage_sum_us / tel.e2e_mean_us : 0.0;
  const bool tel_decomp_ok =
      tel_decomp_ratio >= 0.9 && tel_decomp_ratio <= 1.1;
  const bool telemetry_ok = tel_overhead_ok && tel_decomp_ok;

  Table ttable("Telemetry overhead (" + std::to_string(tel_trials) +
               " trial(s) x " + std::to_string(tel_rows) +
               " requests, batched scoring, live exporter, " + topo.name +
               ")");
  ttable.SetHeader({"telemetry", "best rows/s", "per-trial rows/s"});
  const auto trial_list = [](const std::vector<double>& runs) {
    std::string out;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) out += " ";
      out += Table::Num(runs[i], 0);
    }
    return out;
  };
  ttable.AddRow({"off", Table::Num(tel_off_best, 0),
                 trial_list(tel_off_runs)});
  ttable.AddRow({"on", Table::Num(tel_on_best, 0), trial_list(tel_on_runs)});
  ttable.Print();
  std::printf(
      "\ntelemetry overhead: %.2f%% (best of %d interleaved off/on pair "
      "ratios; gate: <= %.1f%%) -- %s\n",
      tel_overhead * 100.0, tel_trials, tel_max_overhead * 100.0,
      tel_overhead_ok ? "within gate" : "OVER GATE");

  Table dtable("Request lifecycle decomposition (mean us/row, family lr)");
  dtable.SetHeader({"stage", "mean us"});
  for (int s = 0; s < obs::kNumStages; ++s) {
    dtable.AddRow({obs::StageName(s), Table::Num(tel_fam.mean_stage_us[s],
                                                 2)});
  }
  dtable.AddRow({"sum (queue..complete)", Table::Num(tel_stage_sum_us, 2)});
  dtable.AddRow({"end-to-end mean", Table::Num(tel.e2e_mean_us, 2)});
  dtable.Print();
  std::printf(
      "\nstage sum / e2e mean: %.3f (gate: within 10%%) -- %s; %llu spans "
      "traced, %llu metrics exported, %llu exporter rounds (%llu B "
      "prometheus)\n",
      tel_decomp_ratio, tel_decomp_ok ? "decomposes" : "DOES NOT decompose",
      static_cast<unsigned long long>(tel.spans_recorded),
      static_cast<unsigned long long>(tel.registry_metrics),
      static_cast<unsigned long long>(tel.exporter.snapshots),
      static_cast<unsigned long long>(tel.exporter.last_prometheus_bytes));

  // --- experiment 8: SIMD dispatch levels + int8 quantized scoring -------
  const double simd_min_ratio =
      bench::EnvDouble("DW_BENCH_SIMD_MIN_RATIO", 0.9);
  const SimdCompare sc = CompareSimdLevels(dense_rows, dense_dim,
                                           topo.total_cores(),
                                           simd_min_ratio);
  Table isa_table("Scoring kernels by ISA level (dense " +
               std::to_string(sc.rows) + " x " + std::to_string(sc.dim) +
               ", " + std::to_string(sc.threads) +
               " threads, PredictBatch forced per level)");
  isa_table.SetHeader({"level", "supported", "rows/s"});
  for (const KernelLevelRun& lr_run : sc.levels) {
    isa_table.AddRow({lr_run.level, lr_run.supported ? "yes" : "no",
                   lr_run.supported ? Table::Num(lr_run.rows_per_sec, 0)
                                    : "-"});
  }
  isa_table.AddRow({"int8 (" + std::string(kernels::ToString(
                                kernels::ActiveKernelLevel())) +
                     ")",
                 "yes", Table::Num(sc.int8_rows_per_sec, 0)});
  isa_table.Print();
  std::printf(
      "\ndispatch: detected %s, active %s, block_cols %u; best SIMD %s at "
      "%.2fx scalar-tiled (gate: >= %.2fx)%s\n",
      kernels::ToString(kernels::DetectKernelLevel()),
      kernels::ToString(kernels::ActiveKernelLevel()),
      static_cast<unsigned>(kernels::Tuning().block_cols),
      sc.best_simd_level.c_str(), sc.simd_over_scalar, simd_min_ratio,
      sc.best_simd_level == "none" ? " [scalar-only host: gate vacuous]"
                                   : "");
  std::printf(
      "int8: %.0f rows/s (%.2fx best f64), scale %.3e, max |margin err| "
      "%.3e vs bound %.3e -- %s\n",
      sc.int8_rows_per_sec, sc.int8_over_f64, sc.int8_scale,
      sc.int8_max_abs_err, sc.int8_err_bound,
      sc.int8_within_bound ? "within contract" : "CONTRACT VIOLATED");
  const bool kernels_ok = sc.simd_ok && sc.int8_within_bound;

  // --- experiment 9: live placement tuning under a traffic shift ---------
  const double tuner_min_recovery =
      bench::EnvDouble("DW_BENCH_TUNER_MIN_RECOVERY", 0.9);
  const double tuner_phase_sec =
      smoke ? 0.15 : bench::EnvDouble("DW_BENCH_TUNER_SEC", 0.5);
  const TunerBenchResult tb =
      RunTunerShift(topo, tuner_phase_sec, tuner_min_recovery);
  Table tuner_table(
      "Live placement tuning across a publish-heavy -> read-heavy shift "
      "(frozen kPerMachine/kSharded start)");
  tuner_table.SetHeader({"phase", "rows/s"});
  tuner_table.AddRow({"A: publish-heavy (incumbent right)",
                      Table::Num(tb.phase_a_rows_per_sec, 0)});
  tuner_table.AddRow({"B: read-heavy, post-migration",
                      Table::Num(tb.post_flip_rows_per_sec, 0)});
  tuner_table.AddRow({"static optimal (oracle pinning)",
                      Table::Num(tb.static_optimal_rows_per_sec, 0)});
  tuner_table.Print();
  std::printf(
      "\ntuner: %llu scans, %llu flips -> model %s, store %s; %llu rows "
      "served, %llu failed/torn; recovery %.2f of static-optimal (gate: >= "
      "%.2f)\n",
      static_cast<unsigned long long>(tb.scans),
      static_cast<unsigned long long>(tb.flips),
      tb.model_replication.c_str(), tb.store_placement.c_str(),
      static_cast<unsigned long long>(tb.served),
      static_cast<unsigned long long>(tb.failed), tb.recovery,
      tb.min_recovery);
  for (const opt::TunerDecision& d : tb.decisions) {
    std::printf("  scan %llu %s %s: %s -> %s (%.0f reads/period, adv "
                "%.2f) %s\n",
                static_cast<unsigned long long>(d.scan), d.family.c_str(),
                d.kind.c_str(), d.from.c_str(), d.to.c_str(),
                d.observed_reads_per_period, d.advantage,
                d.migrated ? "[migrated]" : "[held]");
  }
  const bool tuner_ok = tb.flip_ok && tb.zero_failed && tb.recovered;

  // --- experiment 10: delta refresh cost vs churn (KV feature store) -----
  const int delta_rows =
      smoke ? 1024 : bench::EnvInt("DW_BENCH_DELTA_ROWS", 8192);
  const int delta_dim = smoke ? 64 : bench::EnvInt("DW_BENCH_DELTA_DIM", 256);
  const int delta_page_rows = bench::EnvInt("DW_BENCH_DELTA_PAGE_ROWS", 32);
  const double delta_max_ratio =
      bench::EnvDouble("DW_BENCH_DELTA_MAX_RATIO", 0.25);
  // Same smoke-vs-dedicated calibration as the telemetry gate: the p99
  // of a milliseconds-long smoke run carries scheduler noise that a 1.5x
  // bound cannot absorb.
  const double key_p99_tol =
      bench::EnvDouble("DW_BENCH_KEY_P99_TOL", smoke ? 2.5 : 1.5);

  const std::vector<DeltaChurnPoint> delta_sweep = RunDeltaChurnSweep(
      topo, static_cast<Index>(delta_rows), static_cast<Index>(delta_dim),
      static_cast<Index>(delta_page_rows));
  Table dsweep("Delta publish vs full rewrite (store " +
               std::to_string(delta_rows) + " x " +
               std::to_string(delta_dim) + ", pages of " +
               std::to_string(delta_page_rows) + " rows, contiguous churn "
               "windows, " + topo.name + ")");
  dsweep.SetHeader({"churn", "keys", "delta MB", "full MB", "ratio",
                    "publish ms"});
  double delta_ratio_at_1pct = 1.0;
  for (const DeltaChurnPoint& pt : delta_sweep) {
    if (pt.churn == 0.01) delta_ratio_at_1pct = pt.ratio;
    dsweep.AddRow({Table::Num(pt.churn, 3), std::to_string(pt.keys),
                   Table::Num(pt.delta_bytes / 1e6, 3),
                   Table::Num(pt.full_bytes / 1e6, 3),
                   Table::Num(pt.ratio, 4), Table::Num(pt.publish_ms, 3)});
  }
  dsweep.Print();
  const bool delta_ratio_ok = delta_ratio_at_1pct <= delta_max_ratio;
  std::printf(
      "\ndelta bytes at 1%% churn: %.4fx of a full rewrite (gate: <= "
      "%.2fx) -- %s\n",
      delta_ratio_at_1pct, delta_max_ratio,
      delta_ratio_ok ? "refresh scales with churn" : "OVER GATE");

  // Key path vs id path: interleaved pairs (same drift-cancelling
  // discipline as the telemetry gate), best p99 per mode across pairs.
  std::vector<double> delta_table_data(static_cast<size_t>(delta_rows) *
                                       delta_dim);
  std::vector<double> delta_weights(delta_dim);
  {
    Rng rng(47);
    for (auto& v : delta_table_data) v = rng.Gaussian(0.0, 1.0);
    for (auto& w : delta_weights) w = rng.Gaussian(0.0, 1.0);
  }
  const int delta_pairs = smoke ? 3 : bench::EnvInt("DW_BENCH_DELTA_PAIRS", 3);
  // Gate on the best WITHIN-pair p99 ratio: the id and key runs of a
  // pair ran back to back and share one noise window, so their ratio
  // cancels the run-to-run drift that dominates millisecond p99s on a
  // shared host (the same estimator the telemetry gate uses).
  DeltaModeRun by_id_run, by_key_run;
  double key_p99_ratio = 1e300;
  for (int pair = 0; pair < delta_pairs; ++pair) {
    const DeltaModeRun id_run = RunKeyedServing(
        delta_table_data, static_cast<Index>(delta_rows),
        static_cast<Index>(delta_dim), lr, delta_weights, topo,
        /*by_key=*/false, static_cast<Index>(delta_page_rows),
        topo.total_cores(), total_rows);
    const DeltaModeRun key_run = RunKeyedServing(
        delta_table_data, static_cast<Index>(delta_rows),
        static_cast<Index>(delta_dim), lr, delta_weights, topo,
        /*by_key=*/true, static_cast<Index>(delta_page_rows),
        topo.total_cores(), total_rows);
    const double ratio =
        id_run.p99_ms > 0.0 ? key_run.p99_ms / id_run.p99_ms : 1.0;
    if (ratio < key_p99_ratio) {
      key_p99_ratio = ratio;
      by_id_run = id_run;
      by_key_run = key_run;
    }
  }
  Table keypath_table("Key path vs id path (" + std::to_string(total_rows) +
               " requests x " + std::to_string(delta_pairs) +
               " interleaved pair(s), best pair by p99 ratio)");
  keypath_table.SetHeader({"mode", "rows/s", "p50 ms", "p99 ms"});
  for (const DeltaModeRun* r : {&by_id_run, &by_key_run}) {
    keypath_table.AddRow({r->mode, Table::Num(r->rows_per_sec, 0),
                   Table::Num(r->p50_ms, 3), Table::Num(r->p99_ms, 3)});
  }
  keypath_table.Print();
  const bool key_p99_ok = key_p99_ratio <= key_p99_tol;
  std::printf(
      "\nkey-path p99 %.3f ms vs id-path %.3f ms (best pair ratio %.2fx; "
      "gate: <= %.2fx) -- %s\n",
      by_key_run.p99_ms, by_id_run.p99_ms, key_p99_ratio, key_p99_tol,
      key_p99_ok ? "no key-path regression" : "OVER GATE");
  const bool delta_ok = delta_ratio_ok && key_p99_ok;

  // --- machine-readable artifact -----------------------------------------
  const char* json_path = std::getenv("DW_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    JsonWriter j;
    j.BeginObject();
    j.Field("bench", "serving");
    j.Field("schema_version", 8);
    j.Field("smoke", smoke);
    j.Field("unix_time", static_cast<int64_t>(std::time(nullptr)));
    j.Field("topology", topo.name);
    j.Field("dataset", dataset.name);
    j.Field("dataset_rows", static_cast<uint64_t>(dataset.a.rows()));
    j.Field("dataset_cols", static_cast<uint64_t>(dataset.a.cols()));
    j.Field("serve_rows", total_rows);
    j.Key("replication_runs").BeginArray();
    for (const ServeRun& r : runs) {
      j.BeginObject();
      j.Field("replication", r.replication);
      j.Field("threads", r.threads);
      j.Field("measured_rows_per_sec", r.measured_rows_per_sec);
      j.Field("model_rows_per_sec", r.sim_rows_per_sec);
      j.Field("p50_ms", r.p50_ms);
      j.Field("p99_ms", r.p99_ms);
      j.Field("remote_mb", r.remote_mb);
      j.EndObject();
    }
    j.EndArray();
    j.Key("batched_vs_scalar").BeginObject();
    j.Field("dense_rows", kc.rows);
    j.Field("dense_dim", kc.dim);
    j.Field("threads", kc.threads);
    j.Field("scalar_rows_per_sec", kc.scalar_rows_per_sec);
    j.Field("batched_rows_per_sec", kc.batched_rows_per_sec);
    j.Field("speedup", kc.speedup);
    j.Field("min_speedup_gate", min_speedup);
    j.EndObject();
    j.Key("slo").BeginObject();
    j.Field("target_p99_ms", slo.target_p99_ms);
    j.Field("unthrottled_rows_per_sec", slo.unthrottled_rows_per_sec);
    j.Field("max_rows_per_sec_under_slo", slo.max_rows_per_sec_under_slo);
    j.Key("trials").BeginArray();
    for (const SloTrial& t : slo.trials) {
      j.BeginObject();
      j.Field("offered_rows_per_sec", t.offered_rows_per_sec);
      j.Field("achieved_rows_per_sec", t.achieved_rows_per_sec);
      j.Field("p50_ms", t.p50_ms);
      j.Field("p99_ms", t.p99_ms);
      j.Field("max_ms", t.max_ms);
      j.Field("meets_slo", t.meets_slo);
      j.EndObject();
    }
    j.EndArray();
    j.EndObject();
    j.Key("families").BeginArray();
    for (const FamilyRun& f : families) {
      const serve::FamilyServingStats& s = f.stats;
      j.BeginObject();
      j.Field("family", s.family);
      j.Field("replication", ToString(s.replication));
      j.Field("replication_rationale", f.rationale);
      j.Field("requests", s.requests);
      j.Field("rows_per_sec", s.rows_per_sec);
      j.Field("p50_ms", s.p50_latency_ms);
      j.Field("p99_ms", s.p99_latency_ms);
      j.Field("max_ms", s.max_latency_ms);
      j.Field("accepted", s.accepted);
      j.Field("rejected", s.rejected);
      j.Field("rejected_cost", s.rejected_cost);
      j.Field("queue_depth", s.queue_depth);
      j.Field("flush_size", s.flush_size);
      j.Field("flush_deadline", s.flush_deadline);
      j.Field("flush_drain", s.flush_drain);
      j.Field("prior_row_us", s.prior_row_us);
      j.Field("est_row_us", s.est_row_us);
      j.Field("measured_row_us_ewma", s.measured_row_us_ewma);
      j.Field("cost_reports", s.cost_reports);
      j.Key("clients").BeginArray();
      for (const serve::ClientServingStats& c : s.clients) {
        j.BeginObject();
        j.Field("client", c.client);
        j.Field("weight", c.weight);
        j.Field("accepted", c.accepted);
        j.Field("rejected", c.rejected);
        j.Field("served", c.served);
        j.EndObject();
      }
      j.EndArray();
      j.Field("mean_staleness_ms", s.mean_staleness_ms);
      j.Field("max_staleness_ms", s.max_staleness_ms);
      j.Field("mean_versions_behind", s.mean_versions_behind);
      j.Field("max_versions_behind", s.max_versions_behind);
      j.Field("exporter_period_ms", f.exporter_period_ms);
      j.Field("exporter_publishes", f.exporter.publishes);
      j.Field("publish_mean_ms", f.exporter.mean_publish_ms);
      j.Field("publish_max_ms", f.exporter.max_publish_ms);
      j.Field("exporter_effective_period_ms",
              f.exporter.effective_period_ms);
      j.Field("exporter_paced_periods", f.exporter.paced_periods);
      j.EndObject();
    }
    j.EndArray();
    j.Key("admission").BeginObject();
    j.Field("dim", adm_dim);
    j.Field("store_rows", adm_store_rows);
    j.Field("duration_sec", adm_sec);
    j.Field("delay_budget_ms", adm_budget_ms);
    j.Field("hogs", adm_hogs);
    j.Field("mice", adm_mice);
    j.Field("mice_interval_us", adm_mice_interval_us);
    j.Key("runs").BeginArray();
    for (const AdmissionRun& run : adm_runs) {
      j.BeginObject();
      j.Field("mode", run.mode);
      j.Field("mice_p99_ms", run.mice_p99_ms);
      j.Field("mice_served_fraction", run.mice_served_fraction);
      j.Field("hog_served_fraction", run.hog_served_fraction);
      j.Field("rejected_cost", run.rejected_cost);
      j.Key("clients").BeginArray();
      for (const AdmissionClientResult& c : run.clients) {
        j.BeginObject();
        j.Field("client", c.name);
        j.Field("hog", c.hog);
        j.Field("submitted", c.submitted);
        j.Field("accepted", c.accepted);
        j.Field("rejected", c.rejected);
        j.Field("p50_ms", c.p50_ms);
        j.Field("p99_ms", c.p99_ms);
        j.EndObject();
      }
      j.EndArray();
      j.EndObject();
    }
    j.EndArray();
    j.Field("prior_row_us", adm_fam.prior_row_us);
    j.Field("est_row_us", adm_fam.est_row_us);
    j.Field("measured_row_us_ewma", adm_fam.measured_row_us_ewma);
    j.Field("cost_reports", adm_fam.cost_reports);
    j.Field("est_over_measured", est_over_measured);
    j.Field("estimate_converged", adm_converged);
    j.Field("fair_beats_fifo", adm_fair_beats_fifo);
    j.EndObject();
    j.Key("feature_store").BeginObject();
    j.Field("store_rows", store_rows);
    j.Field("dim", store_dim);
    j.Field("requests", total_rows);
    j.Key("runs").BeginArray();
    for (const StoreRun& r : store_runs) {
      j.BeginObject();
      j.Field("mode", r.mode);
      j.Field("placement", r.placement);
      j.Field("placement_rationale", r.rationale);
      j.Field("measured_rows_per_sec", r.measured_rows_per_sec);
      j.Field("model_rows_per_sec", r.sim_rows_per_sec);
      j.Field("p50_ms", r.p50_ms);
      j.Field("p99_ms", r.p99_ms);
      j.Field("local_feature_mb", r.local_feature_mb);
      j.Field("remote_feature_mb", r.remote_feature_mb);
      j.EndObject();
    }
    j.EndArray();
    j.Key("delta").BeginObject();
    j.Field("store_rows", delta_rows);
    j.Field("dim", delta_dim);
    j.Field("page_rows", delta_page_rows);
    j.Key("churn_sweep").BeginArray();
    for (const DeltaChurnPoint& pt : delta_sweep) {
      j.BeginObject();
      j.Field("churn", pt.churn);
      j.Field("keys", static_cast<uint64_t>(pt.keys));
      j.Field("delta_bytes", pt.delta_bytes);
      j.Field("full_bytes", pt.full_bytes);
      j.Field("ratio", pt.ratio);
      j.Field("publish_ms", pt.publish_ms);
      j.EndObject();
    }
    j.EndArray();
    j.Field("ratio_at_1pct_churn", delta_ratio_at_1pct);
    j.Field("max_ratio_gate", delta_max_ratio);
    j.Field("ratio_ok", delta_ratio_ok);
    j.Key("key_path").BeginObject();
    j.Field("pairs", delta_pairs);
    j.Field("requests", total_rows);
    j.Field("id_rows_per_sec", by_id_run.rows_per_sec);
    j.Field("id_p50_ms", by_id_run.p50_ms);
    j.Field("id_p99_ms", by_id_run.p99_ms);
    j.Field("key_rows_per_sec", by_key_run.rows_per_sec);
    j.Field("key_p50_ms", by_key_run.p50_ms);
    j.Field("key_p99_ms", by_key_run.p99_ms);
    j.Field("key_over_id_p99", key_p99_ratio);
    j.Field("p99_tolerance_gate", key_p99_tol);
    j.Field("key_p99_ok", key_p99_ok);
    j.EndObject();
    j.Field("delta_ok", delta_ok);
    j.EndObject();
    j.EndObject();
    j.Key("telemetry").BeginObject();
    j.Field("trials", tel_trials);
    j.Field("requests", tel_rows);
    j.Field("threads", topo.total_cores());
    j.Field("off_rows_per_sec", tel_off_best);
    j.Field("on_rows_per_sec", tel_on_best);
    j.Key("off_trial_rows_per_sec").BeginArray();
    for (const double r : tel_off_runs) j.Number(r);
    j.EndArray();
    j.Key("on_trial_rows_per_sec").BeginArray();
    for (const double r : tel_on_runs) j.Number(r);
    j.EndArray();
    j.Field("estimator", "best_of_k_pair_ratios");
    j.Key("pair_ratios").BeginArray();
    for (const double r : tel_pair_ratios) j.Number(r);
    j.EndArray();
    j.Field("median_pair_ratio", tel_median_ratio);
    j.Field("best_pair_ratio", tel_best_pair_ratio);
    j.Field("overhead_fraction", tel_overhead);
    j.Field("overhead_gate", tel_max_overhead);
    j.Field("overhead_ok", tel_overhead_ok);
    j.Key("mean_stage_us").BeginObject();
    for (int s = 0; s < obs::kNumStages; ++s) {
      j.Field(obs::StageName(s), tel_fam.mean_stage_us[s]);
    }
    j.EndObject();
    j.Field("stage_sum_us", tel_stage_sum_us);
    j.Field("e2e_mean_us", tel.e2e_mean_us);
    j.Field("decomposition_ratio", tel_decomp_ratio);
    j.Field("decomposition_ok", tel_decomp_ok);
    j.Field("spans_recorded", tel.spans_recorded);
    j.Field("registry_metrics", tel.registry_metrics);
    j.Field("exporter_snapshots", tel.exporter.snapshots);
    j.Field("exporter_last_render_ms", tel.exporter.last_render_ms);
    j.Field("exporter_prometheus_bytes", tel.exporter.last_prometheus_bytes);
    j.EndObject();
    j.Key("kernels").BeginObject();
    j.Field("dense_rows", sc.rows);
    j.Field("dense_dim", sc.dim);
    j.Field("threads", sc.threads);
    j.Field("detected_level", kernels::ToString(kernels::DetectKernelLevel()));
    j.Field("active_level", kernels::ToString(kernels::ActiveKernelLevel()));
    j.Field("block_cols", static_cast<uint64_t>(kernels::Tuning().block_cols));
    j.Key("levels").BeginArray();
    for (const KernelLevelRun& run : sc.levels) {
      j.BeginObject();
      j.Field("level", run.level);
      j.Field("supported", run.supported);
      j.Field("rows_per_sec", run.rows_per_sec);
      j.EndObject();
    }
    j.EndArray();
    j.Field("best_simd_level", sc.best_simd_level);
    j.Field("best_simd_rows_per_sec", sc.best_simd_rows_per_sec);
    j.Field("simd_over_scalar", sc.simd_over_scalar);
    j.Field("simd_min_ratio_gate", simd_min_ratio);
    j.Field("simd_ok", sc.simd_ok);
    j.Field("int8_rows_per_sec", sc.int8_rows_per_sec);
    j.Field("int8_over_f64", sc.int8_over_f64);
    j.Field("int8_scale", sc.int8_scale);
    j.Field("int8_max_abs_err", sc.int8_max_abs_err);
    j.Field("int8_err_bound", sc.int8_err_bound);
    j.Field("int8_within_bound", sc.int8_within_bound);
    j.Field("kernels_ok", kernels_ok);
    j.EndObject();
    j.Key("tuner").BeginObject();
    j.Field("scans", tb.scans);
    j.Field("flips", tb.flips);
    j.Field("period_adjustments", tb.period_adjustments);
    j.Field("final_model_replication", tb.model_replication);
    j.Field("final_store_placement", tb.store_placement);
    j.Field("served", tb.served);
    j.Field("failed", tb.failed);
    j.Field("phase_a_rows_per_sec", tb.phase_a_rows_per_sec);
    j.Field("post_flip_rows_per_sec", tb.post_flip_rows_per_sec);
    j.Field("static_optimal_rows_per_sec", tb.static_optimal_rows_per_sec);
    j.Field("recovery", tb.recovery);
    j.Field("min_recovery_gate", tb.min_recovery);
    j.Key("decisions").BeginArray();
    for (const opt::TunerDecision& d : tb.decisions) {
      j.BeginObject();
      j.Field("scan", d.scan);
      j.Field("family", d.family);
      j.Field("kind", d.kind);
      j.Field("from", d.from);
      j.Field("to", d.to);
      j.Field("migrated", d.migrated);
      j.Field("observed_reads_per_period", d.observed_reads_per_period);
      j.Field("observed_rows", d.observed_rows);
      j.Field("observed_staleness_ms", d.observed_staleness_ms);
      j.Field("observed_churn", d.observed_churn);
      j.Field("incumbent_cost_sec", d.incumbent_cost_sec);
      j.Field("challenger_cost_sec", d.challenger_cost_sec);
      j.Field("advantage", d.advantage);
      j.Field("rationale", d.rationale);
      j.EndObject();
    }
    j.EndArray();
    j.Field("tuner_flip_ok", tb.flip_ok);
    j.Field("tuner_zero_failed", tb.zero_failed);
    j.Field("tuner_recovered", tb.recovered);
    j.Field("tuner_ok", tuner_ok);
    j.EndObject();
    j.EndObject();
    if (!j.WriteFile(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }

  const bool replication_ok = per_node_max >= per_machine_max;
  const bool speedup_ok = kc.speedup >= min_speedup;
  // Fig. 9 analogue: collocated (replicated) feature fetch must model at
  // least as fast as the sharded store once gathers span sockets.
  const bool store_ok = collocated_sim >= sharded_sim;
  // Experiment 6 gates: fair queuing must keep the mice strictly better
  // than FIFO on BOTH p99 and served fraction under the hog overload,
  // and the calibrated service-time estimate must converge to within 2x
  // of the workers' measured EWMA.
  const bool admission_ok = adm_fair_beats_fifo && adm_converged;
  // Experiment 7 gates: full telemetry (registry + stage histograms +
  // sampled tracing + live exporter) must cost <= tel_max_overhead of
  // throughput vs the no-op registry, and the per-stage latency means
  // must decompose the measured end-to-end latency to within 10%.
  if (smoke) {
    // Smoke mode exists to validate the artifact schema per commit, not
    // to gate perf on a noisy shared runner.
    std::printf(
        "smoke run complete (gates: replication %s, speedup %s, "
        "collocated fetch %s, admission %s, telemetry %s, kernels %s, "
        "tuner %s, delta %s)\n",
        replication_ok ? "ok" : "MISSED", speedup_ok ? "ok" : "MISSED",
        store_ok ? "ok" : "MISSED", admission_ok ? "ok" : "MISSED",
        telemetry_ok ? "ok" : "MISSED", kernels_ok ? "ok" : "MISSED",
        tuner_ok ? "ok" : "MISSED", delta_ok ? "ok" : "MISSED");
    return 0;
  }
  if (!speedup_ok) {
    std::printf("FAIL: batched kernel speedup %.2fx under the %.2fx gate\n",
                kc.speedup, min_speedup);
  }
  if (!admission_ok) {
    std::printf(
        "FAIL: admission gate (fair beats fifo: %s, estimate converged: "
        "%s)\n",
        adm_fair_beats_fifo ? "yes" : "no", adm_converged ? "yes" : "no");
  }
  if (!telemetry_ok) {
    std::printf(
        "FAIL: telemetry gate (overhead %.2f%% vs %.1f%% gate: %s, "
        "decomposition ratio %.3f: %s)\n",
        tel_overhead * 100.0, tel_max_overhead * 100.0,
        tel_overhead_ok ? "ok" : "over", tel_decomp_ratio,
        tel_decomp_ok ? "ok" : "off");
  }
  if (!kernels_ok) {
    std::printf(
        "FAIL: kernels gate (best SIMD %s at %.2fx scalar-tiled vs %.2fx "
        "gate: %s; int8 within bound: %s)\n",
        sc.best_simd_level.c_str(), sc.simd_over_scalar, simd_min_ratio,
        sc.simd_ok ? "ok" : "under", sc.int8_within_bound ? "yes" : "no");
  }
  if (!tuner_ok) {
    std::printf(
        "FAIL: tuner gate (flips %llu >= 1: %s, failed/torn %llu == 0: %s, "
        "recovery %.2f >= %.2f: %s)\n",
        static_cast<unsigned long long>(tb.flips),
        tb.flip_ok ? "ok" : "no",
        static_cast<unsigned long long>(tb.failed),
        tb.zero_failed ? "ok" : "no", tb.recovery, tb.min_recovery,
        tb.recovered ? "ok" : "under");
  }
  if (!delta_ok) {
    std::printf(
        "FAIL: delta gate (bytes at 1%% churn %.4fx vs %.2fx gate: %s; "
        "key p99 %.3f ms vs id %.3f ms x %.2f: %s)\n",
        delta_ratio_at_1pct, delta_max_ratio,
        delta_ratio_ok ? "ok" : "over", by_key_run.p99_ms, by_id_run.p99_ms,
        key_p99_tol, key_p99_ok ? "ok" : "over");
  }
  return replication_ok && speedup_ok && store_ok && admission_ok &&
                 telemetry_ok && kernels_ok && tuner_ok && delta_ok
             ? 0
             : 1;
}
