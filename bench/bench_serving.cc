// Serving throughput vs. thread count x replication strategy -- the
// serving analogue of Fig. 8. Training showed PerNode replication trades a
// little statistical efficiency for hardware efficiency; serving has no
// statistical side at all (reads only), so PerNode should dominate
// PerMachine outright once readers span sockets. Measured rows/sec comes
// from the host wall clock; memory-model rows/sec applies the calibrated
// topology model to the logically-counted serving traffic (remote model
// reads cross the simulated interconnect), per the substitution used by
// every other bench.
//
// Knobs: DW_BENCH_TOPO (default local2), DW_BENCH_SERVE_ROWS (default
// 20000), DW_BENCH_SCALE (dataset size multiplier).
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "numa/memory_model.h"
#include "serve/serving_engine.h"

namespace dw {
namespace {

using matrix::Index;

struct ServeRun {
  double measured_rows_per_sec = 0.0;
  double sim_rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double remote_mb = 0.0;
};

// The memory-model input for the run's total traffic under BALANCED
// routing: every active node serves an equal share of the rows. On this
// small host, which worker happens to drain the queue is scheduling noise
// (virtual cores are oversubscribed onto few physical CPUs); a production
// load balancer -- like the trainer's per-epoch partitioning -- hands each
// node an equal share, and that is the regime the Fig. 8-style comparison
// is about. Under kPerMachine the canonical share of model reads from
// nodes other than the replica's crosses the interconnect.
numa::SimulationInput BalancedSimInput(const serve::ServingStats& stats,
                                       const numa::Topology& topo,
                                       serve::Replication rep, int threads,
                                       uint64_t model_bytes) {
  const int nodes_used = std::min(threads, topo.num_nodes);
  numa::SimulationInput in(topo.num_nodes);
  const numa::AccessCounters& t = stats.traffic;
  const uint64_t model_total = t.model_read_bytes + t.remote_read_bytes;
  for (int n = 0; n < nodes_used; ++n) {
    numa::AccessCounters c;
    c.local_read_bytes = t.local_read_bytes / nodes_used;
    c.flops = t.flops / nodes_used;
    c.updates = t.updates / nodes_used;
    if (rep == serve::Replication::kPerNode || n == 0) {
      c.model_read_bytes = model_total / nodes_used;
    } else {
      c.remote_read_bytes = model_total / nodes_used;
    }
    in.traffic.per_node[n] = c;
    in.active_workers[n] = std::max(1, threads / nodes_used);
  }
  in.model_sharing_sockets =
      rep == serve::Replication::kPerMachine ? nodes_used : 1;
  in.model_bytes = model_bytes;
  return in;
}

ServeRun RunServing(const data::Dataset& d, const models::ModelSpec& spec,
                    const std::vector<double>& weights,
                    const numa::Topology& topo, serve::Replication rep,
                    int threads, int total_rows) {
  serve::ServingOptions opts;
  opts.topology = topo;
  opts.replication = rep;
  opts.num_threads = threads;
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(200);
  serve::ServingEngine server(&spec, opts);
  server.Publish(spec.name(), weights);
  const Status st = server.Start();
  DW_CHECK(st.ok()) << st.ToString();

  const int kProducers = 4;
  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<double>> futures;
      futures.reserve(total_rows / kProducers + 1);
      std::vector<Index> idx;
      std::vector<double> vals;
      for (int r = p; r < total_rows; r += kProducers) {
        const auto row = d.a.Row(static_cast<Index>(r % d.a.rows()));
        idx.assign(row.indices, row.indices + row.nnz);
        vals.assign(row.values, row.values + row.nnz);
        for (;;) {
          auto fut = server.Score(idx, vals);
          if (fut.ok()) {
            futures.push_back(std::move(fut).value());
            break;
          }
          // Only queue-full back-pressure is retryable; anything else
          // would spin forever.
          DW_CHECK(fut.status().code() ==
                   Status::Code::kResourceExhausted)
              << fut.status().ToString();
          std::this_thread::yield();
        }
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  const double wall = timer.Seconds();
  server.Stop();

  const serve::ServingStats stats = server.Stats();
  DW_CHECK_EQ(stats.requests, static_cast<uint64_t>(total_rows));

  ServeRun out;
  out.measured_rows_per_sec = total_rows / wall;
  out.p50_ms = stats.p50_latency_ms;
  out.p99_ms = stats.p99_latency_ms;
  out.remote_mb = stats.traffic.remote_read_bytes / (1024.0 * 1024.0);
  const numa::MemoryModel model(topo);
  const uint64_t model_bytes =
      static_cast<uint64_t>(d.a.cols()) * sizeof(double);
  const double sim_sec =
      model
          .SimulateEpoch(
              BalancedSimInput(stats, topo, rep, threads, model_bytes))
          .total_sec;
  out.sim_rows_per_sec = sim_sec > 0.0 ? total_rows / sim_sec : 0.0;
  return out;
}

}  // namespace
}  // namespace dw

int main() {
  using namespace dw;

  const std::string topo_name = [] {
    const char* v = std::getenv("DW_BENCH_TOPO");
    return std::string(v != nullptr ? v : "local2");
  }();
  auto topo_or = numa::TopologyByName(topo_name);
  DW_CHECK(topo_or.ok()) << topo_or.status().ToString();
  const numa::Topology topo = topo_or.value();
  const int total_rows = bench::EnvInt("DW_BENCH_SERVE_ROWS", 20000);

  const data::Dataset dataset = bench::BenchRcv1();
  models::LogisticSpec lr;
  std::printf("dataset %s: %u rows, %u features; topology %s (%d nodes)\n",
              dataset.name.c_str(), dataset.a.rows(), dataset.a.cols(),
              topo.name.c_str(), topo.num_nodes);

  // Train briefly: serving quality is not under test, the scoring path is.
  engine::EngineOptions train_opts =
      bench::MakeOptions(topo, engine::AccessMethod::kRowWise,
                         engine::ModelReplication::kPerNode,
                         engine::DataReplication::kSharding);
  engine::Engine trainer(&dataset, &lr, train_opts);
  DW_CHECK(trainer.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = 5;
  trainer.Run(cfg);
  const engine::ModelExport exported = trainer.Export();

  const std::vector<int> thread_counts = {1, topo.total_cores() / 2,
                                          topo.total_cores()};
  const std::vector<serve::Replication> strategies = {
      serve::Replication::kPerNode, serve::Replication::kPerMachine};

  Table table("Serving throughput (" + std::to_string(total_rows) +
              " requests, batch<=64, " + topo.name + ")");
  table.SetHeader({"replication", "threads", "measured rows/s", "model rows/s",
                   "p50 ms", "p99 ms", "remote MB"});
  double per_node_max = 0.0;
  double per_machine_max = 0.0;
  for (const serve::Replication rep : strategies) {
    for (const int threads : thread_counts) {
      const ServeRun r = RunServing(dataset, lr, exported.weights, topo, rep,
                                    threads, total_rows);
      table.AddRow({ToString(rep), std::to_string(threads),
                    Table::Num(r.measured_rows_per_sec, 0),
                    Table::Num(r.sim_rows_per_sec, 0), Table::Num(r.p50_ms, 3),
                    Table::Num(r.p99_ms, 3), Table::Num(r.remote_mb, 1)});
      if (threads == topo.total_cores()) {
        if (rep == serve::Replication::kPerNode) {
          per_node_max = r.sim_rows_per_sec;
        } else {
          per_machine_max = r.sim_rows_per_sec;
        }
      }
    }
  }
  table.Print();
  std::printf(
      "\nmax-thread model throughput: PerNode %.0f rows/s vs PerMachine "
      "%.0f rows/s (%s)\n",
      per_node_max, per_machine_max,
      per_node_max >= per_machine_max ? "PerNode >= PerMachine, as predicted"
                                      : "UNEXPECTED: PerMachine ahead");
  return per_node_max >= per_machine_max ? 0 : 1;
}
