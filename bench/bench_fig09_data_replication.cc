// Figure 9: the data-replication tradeoff, SVM on Reuters under PerNode.
//  (a) Statistical efficiency: epochs to reach a given loss for Sharding
//      vs FullReplication (paper: FullReplication needs ~10x fewer epochs
//      near 1% loss, but more at the high-error end).
//  (b) Hardware efficiency: time per epoch across machines with more
//      nodes (local2 / local4 / local8) -- FullReplication slows with the
//      node count because each epoch processes #nodes x the data.
#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

int main() {
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 120);
  const data::Dataset reuters = bench::BenchReuters();
  models::SvmSpec svm;
  const double opt_loss = bench::OptimalLoss(reuters, svm, 200);

  Table a("Figure 9(a): epochs to converge, SVM (Reuters), PerNode, local2");
  a.SetHeader({"Strategy", "100%", "50%", "10%", "1%"});
  for (DataReplication drep :
       {DataReplication::kSharding, DataReplication::kFullReplication}) {
    const engine::RunResult rr = bench::RunBestStep(
        reuters, svm,
        MakeOptions(numa::Local2(), AccessMethod::kRowWise,
                    ModelReplication::kPerNode, drep),
        max_epochs, opt_loss);
    auto cell = [&](double pct) {
      const int e = rr.EpochsToLoss(bench::Target(opt_loss, pct));
      return e < 0 ? std::string("timeout") : std::to_string(e);
    };
    a.AddRow({ToString(drep), cell(100), cell(50), cell(10), cell(1)});
  }
  a.Print();

  Table b("Figure 9(b): sim time per epoch across machines, SVM (Reuters)");
  b.SetHeader({"Machine", "Sharding s/epoch", "FullReplication s/epoch",
               "slowdown"});
  for (const numa::Topology& topo :
       {numa::Local2(), numa::Local4(), numa::Local8()}) {
    double per_epoch[2] = {0, 0};
    int k = 0;
    for (DataReplication drep :
         {DataReplication::kSharding, DataReplication::kFullReplication}) {
      const engine::RunResult rr = bench::RunEngine(
          reuters, svm,
          MakeOptions(topo, AccessMethod::kRowWise,
                      ModelReplication::kPerNode, drep, 0.05),
          3);
      per_epoch[k++] = rr.TotalSimSec() / rr.epochs.size();
    }
    b.AddRow({topo.name, Table::Num(per_epoch[0], 6),
              Table::Num(per_epoch[1], 6),
              bench::Ratio(per_epoch[1], per_epoch[0])});
  }
  b.Print();
  std::puts("\nShape check vs paper: FullReplication reaches tight losses in"
            "\nfewer epochs, while its per-epoch cost grows roughly with the"
            "\nnumber of nodes (each node sweeps the full dataset).");
  return 0;
}
