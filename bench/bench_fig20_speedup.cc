// Figure 20 (appendix C.2): speedup vs thread count for LR on Music,
// local2, for the three model-replication strategies plus a Delite-like
// DSL baseline (shared model, OS data placement -- the configuration that
// stops scaling past one socket in the paper's experiment). Speedup is
// computed from memory-model epoch times so the virtual 12-core local2 is
// exercised, not the 2-core host.
#include "bench/bench_common.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

namespace {

double SimEpoch(const data::Dataset& d, const models::ModelSpec& spec,
                int workers_per_node, int nodes_used,
                ModelReplication mrep, bool collocate) {
  numa::Topology topo = numa::Local2();
  topo.num_nodes = nodes_used;
  engine::EngineOptions o =
      MakeOptions(topo, AccessMethod::kRowWise, mrep,
                  DataReplication::kSharding, 0.02);
  o.workers_per_node = workers_per_node;
  o.collocate_data = collocate;
  const engine::RunResult rr = bench::RunEngine(d, spec, o, 2);
  return rr.TotalSimSec() / rr.epochs.size();
}

}  // namespace

int main() {
  const data::Dataset music = data::WithBinaryLabels(bench::BenchMusic());
  models::LogisticSpec lr;

  // Thread counts 1..12 on local2 (6 cores/socket): up to 6 threads stay
  // on one socket, beyond that the second socket joins.
  Table t("Figure 20: speedup vs #threads, LR (Music), local2 memory model");
  t.SetHeader({"Threads", "PerCore", "PerNode", "PerMachine",
               "DSL baseline"});

  struct Config {
    ModelReplication mrep;
    bool collocate;
  };
  const Config configs[] = {{ModelReplication::kPerCore, true},
                            {ModelReplication::kPerNode, true},
                            {ModelReplication::kPerMachine, true},
                            {ModelReplication::kPerMachine, false}};
  double base[4] = {0, 0, 0, 0};
  for (int threads : {1, 2, 4, 6, 8, 10, 12}) {
    const int nodes = threads <= 6 ? 1 : 2;
    const int wpn = threads / nodes;
    std::vector<std::string> row{std::to_string(threads)};
    for (int c = 0; c < 4; ++c) {
      const double t_epoch =
          SimEpoch(music, lr, wpn, nodes, configs[c].mrep,
                   configs[c].collocate);
      if (threads == 1) base[c] = t_epoch;
      row.push_back(Table::Num(base[c] / t_epoch, 2));
    }
    t.AddRow(row);
  }
  t.Print();
  std::puts("\nShape check vs paper: PerCore/PerNode speed up across both"
            "\nsockets; the DSL-like baseline (shared model, OS placement)"
            "\nflattens once the second socket joins (>6 threads).");
  return 0;
}
