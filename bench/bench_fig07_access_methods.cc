// Figure 7: the access-method selection tradeoff.
//  (a) Statistical efficiency: epochs to reach 10% of the optimal loss
//      for row-wise vs column access on four datasets (SVM on RCV1 and
//      Reuters, LP on Amazon and Google). The paper finds the gap small
//      (within ~50%).
//  (b) Hardware efficiency: time per epoch against the Fig. 6 cost ratio,
//      on element-subsampled Music datasets -- the row/column crossover.
#include "data/transforms.h"

#include "bench/bench_common.h"
#include "opt/cost_model.h"

using namespace dw;
using bench::MakeOptions;
using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

namespace {

int EpochsTo(const engine::RunResult& rr, double target) {
  const int e = rr.EpochsToLoss(target);
  return e < 0 ? -1 : e;
}

std::string EpochsCell(int epochs) {
  return epochs < 0 ? "timeout" : std::to_string(epochs);
}

}  // namespace

int main() {
  const numa::Topology topo = numa::Local2();
  const int max_epochs = bench::EnvInt("DW_BENCH_EPOCHS", 60);

  // ----- (a) epochs to 10% loss, row vs column ---------------------------
  Table a("Figure 7(a): epochs to converge to 10% of optimal loss");
  a.SetHeader({"Task", "Column-wise", "Row-wise"});

  {
    models::SvmSpec svm;
    for (auto& d : {bench::BenchRcv1(), bench::BenchReuters()}) {
      const double opt_loss = bench::OptimalLoss(d, svm);
      const double target = bench::Target(opt_loss, 10.0);
      const auto row = bench::RunBestStep(
          d, svm,
          MakeOptions(topo, AccessMethod::kRowWise,
                      ModelReplication::kPerNode,
                      DataReplication::kFullReplication),
          max_epochs, opt_loss);
      const auto col = bench::RunBestStep(
          d, svm,
          MakeOptions(topo, AccessMethod::kColToRow,
                      ModelReplication::kPerMachine,
                      DataReplication::kSharding),
          max_epochs, opt_loss, {1.0, 0.5, 0.1});
      a.AddRow({"SVM " + d.name, EpochsCell(EpochsTo(col, target)),
                EpochsCell(EpochsTo(row, target))});
    }
  }
  {
    models::LpSpec lp;
    for (auto& d : {bench::BenchAmazonLp(), bench::BenchGoogleLp()}) {
      const double opt_loss = bench::OptimalLoss(d, lp);
      const double target = bench::Target(opt_loss, 10.0);
      const auto row = bench::RunBestStep(
          d, lp,
          MakeOptions(topo, AccessMethod::kRowWise,
                      ModelReplication::kPerNode,
                      DataReplication::kFullReplication),
          max_epochs, opt_loss, {0.1, 0.05, 0.01});
      const auto col = bench::RunBestStep(
          d, lp,
          MakeOptions(topo, AccessMethod::kColToRow,
                      ModelReplication::kPerMachine,
                      DataReplication::kSharding),
          max_epochs, opt_loss, {0.1, 0.05, 0.01});
      a.AddRow({"LP " + d.name, EpochsCell(EpochsTo(col, target)),
                EpochsCell(EpochsTo(row, target))});
    }
  }
  a.Print();

  // ----- (b) time per epoch vs cost ratio (Music subsampling sweep) ------
  Table b("Figure 7(b): time/epoch vs cost ratio (Music, element subsampling;"
          " sim = local2 memory model; both methods PerMachine as in the"
          " paper's Sec. 3.2 setup)");
  b.SetHeader({"keep frac", "cost ratio", "row sim s/epoch",
               "col sim s/epoch", "row wall s/epoch", "col wall s/epoch"});
  const data::Dataset music = bench::BenchMusic();
  const data::Dataset music_bin = data::WithBinaryLabels(music);
  models::SvmSpec svm;
  const double alpha = opt::AlphaForTopology(topo);
  for (double keep : {0.02, 0.05, 0.1, 0.3, 0.6, 1.0}) {
    const data::Dataset sub =
        keep < 1.0 ? data::SubsampleElements(music_bin, keep, 99) : music_bin;
    const double ratio = opt::CostRatio(sub.Stats(), alpha);
    const auto row = bench::RunEngine(
        sub, svm,
        MakeOptions(topo, AccessMethod::kRowWise,
                    ModelReplication::kPerMachine, DataReplication::kSharding),
        3);
    const auto col = bench::RunEngine(
        sub, svm,
        MakeOptions(topo, AccessMethod::kColToRow,
                    ModelReplication::kPerMachine, DataReplication::kSharding),
        3);
    const double row_sim = row.TotalSimSec() / row.epochs.size();
    const double col_sim = col.TotalSimSec() / col.epochs.size();
    const double row_wall = row.TotalWallSec() / row.epochs.size();
    const double col_wall = col.TotalWallSec() / col.epochs.size();
    b.AddRow({Table::Num(keep, 2), Table::Num(ratio, 3),
              Table::Num(row_sim, 6), Table::Num(col_sim, 6),
              Table::Num(row_wall, 4), Table::Num(col_wall, 4)});
  }
  b.Print();
  std::puts("\nShape check vs paper: the epoch gap in (a) stays small while"
            "\n(b) shows row-wise winning at low cost ratio and column-wise"
            "\nwinning as the ratio grows (crossover).");
  return 0;
}
